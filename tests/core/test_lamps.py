"""Tests for LAMPS and LAMPS+PS."""

import math

import pytest

from repro.core.lamps import energy_vs_processors, lamps, lamps_ps, \
    lamps_search
from repro.core.results import Heuristic, InfeasibleScheduleError
from repro.core.sns import sns, sns_ps
from repro.graphs.analysis import critical_path_length, total_work
from repro.graphs.generators import independent_tasks, stg_random_graph
from repro.sched.validate import validate_schedule


@pytest.fixture
def coarse_fig4(fig4_graph):
    return fig4_graph.scaled(3.1e6)


class TestLamps:
    def test_heuristic_tag(self, coarse_fig4):
        r = lamps(coarse_fig4, 2 * critical_path_length(coarse_fig4))
        assert r.heuristic is Heuristic.LAMPS

    def test_valid_schedule_meets_deadline(self, coarse_fig4):
        r = lamps(coarse_fig4, 2 * critical_path_length(coarse_fig4))
        validate_schedule(r.schedule)
        assert r.schedule.makespan / r.point.frequency <= \
            r.deadline_seconds * (1 + 1e-9)

    def test_never_worse_than_sns(self):
        for seed in range(5):
            g = stg_random_graph(40, seed).scaled(3.1e6)
            for k in (1.5, 4):
                deadline = k * critical_path_length(g)
                assert lamps(g, deadline).total_energy <= \
                    sns(g, deadline).total_energy + 1e-12

    def test_uses_fewer_processors_on_loose_deadline(self):
        g = stg_random_graph(50, 7).scaled(3.1e6)
        tight = lamps(g, 1.5 * critical_path_length(g))
        loose = lamps(g, 8 * critical_path_length(g))
        assert loose.n_processors <= tight.n_processors

    def test_example_graph_drops_to_two_processors(self, coarse_fig4):
        # Fig. 7a: LAMPS schedules the example on 2 processors.
        r = lamps(coarse_fig4, 1.5 * critical_path_length(coarse_fig4))
        assert r.n_processors == 2

    def test_work_lower_bound_respected(self):
        # The chosen processor count can never beat ceil(work / D).
        g = independent_tasks(8, weights=[10.0] * 8).scaled(3.1e6)
        deadline = 2 * critical_path_length(g)  # 20 units for 80 work
        r = lamps(g, deadline)
        assert r.n_processors >= math.ceil(
            total_work(g) / deadline)

    def test_infeasible_raises(self, coarse_fig4):
        from repro.sched.deadlines import InfeasibleDeadlineError

        with pytest.raises((InfeasibleScheduleError,
                            InfeasibleDeadlineError)):
            lamps(coarse_fig4, 0.9 * critical_path_length(coarse_fig4))

    def test_bad_phase2_mode_rejected(self, coarse_fig4):
        with pytest.raises(ValueError, match="phase2"):
            lamps_search(coarse_fig4, 1e9, phase2="quadratic")


class TestLampsPs:
    def test_heuristic_tag(self, coarse_fig4):
        r = lamps_ps(coarse_fig4, 2 * critical_path_length(coarse_fig4))
        assert r.heuristic is Heuristic.LAMPS_PS

    def test_never_worse_than_lamps(self):
        for seed in range(5):
            g = stg_random_graph(40, seed).scaled(3.1e6)
            deadline = 2 * critical_path_length(g)
            assert lamps_ps(g, deadline).total_energy <= \
                lamps(g, deadline).total_energy + 1e-12

    def test_never_worse_than_sns_ps(self):
        # LAMPS+PS's sweep includes the fully spread S&S schedule.
        for seed in range(5):
            g = stg_random_graph(40, seed).scaled(3.1e6)
            deadline = 2 * critical_path_length(g)
            assert lamps_ps(g, deadline).total_energy <= \
                sns_ps(g, deadline).total_energy + 1e-12

    def test_fine_grain_matches_lamps(self, fig4_graph):
        # Gaps below breakeven: PS cannot help, results coincide.
        g = fig4_graph.scaled(3.1e4)
        deadline = 2 * critical_path_length(g)
        assert lamps_ps(g, deadline).total_energy == pytest.approx(
            lamps(g, deadline).total_energy)


class TestEnergyVsProcessors:
    def test_curve_length_and_feasibility(self, coarse_fig4):
        deadline = 2 * critical_path_length(coarse_fig4)
        curve = energy_vs_processors(coarse_fig4, deadline,
                                     max_processors=5)
        assert [n for n, _ in curve] == [1, 2, 3, 4, 5]
        # 1 processor: work 18 vs deadline 20 units — feasible here.
        assert all(e is not None for _, e in curve)

    def test_infeasible_counts_are_none(self):
        g = independent_tasks(4, weights=[10.0] * 4).scaled(3.1e6)
        deadline = 1.0 * critical_path_length(g)  # needs all 4 procs
        curve = energy_vs_processors(g, deadline, max_processors=4)
        assert curve[0][1] is None and curve[-1][1] is not None

    def test_auto_stop_at_makespan_plateau(self, coarse_fig4):
        deadline = 2 * critical_path_length(coarse_fig4)
        curve = energy_vs_processors(coarse_fig4, deadline)
        # The example graph cannot use more than 3 processors.
        assert len(curve) <= 4

    def test_min_matches_lamps_choice(self, coarse_fig4):
        deadline = 2 * critical_path_length(coarse_fig4)
        curve = energy_vs_processors(coarse_fig4, deadline)
        best = min((e.total for _, e in curve if e is not None))
        assert lamps(coarse_fig4, deadline).total_energy == \
            pytest.approx(best)


class TestPhase2Modes:
    def test_greedy_never_beats_linear(self):
        for seed in range(4):
            g = stg_random_graph(50, seed).scaled(3.1e6)
            deadline = 2 * critical_path_length(g)
            lin = lamps_search(g, deadline, phase2="linear")
            greedy = lamps_search(g, deadline, phase2="greedy")
            assert lin.total_energy <= greedy.total_energy + 1e-12
