"""Tests for the LIMIT-SF and LIMIT-MF lower bounds."""

import pytest

from repro.core.limits import limit_mf, limit_sf
from repro.core.results import Heuristic, InfeasibleScheduleError
from repro.core.suite import paper_suite
from repro.graphs.analysis import critical_path_length, total_work
from repro.graphs.generators import stg_random_graph


@pytest.fixture
def coarse(fig4_graph):
    return fig4_graph.scaled(3.1e6)


class TestLimitSf:
    def test_energy_is_work_times_epc(self, coarse, platform):
        deadline = 2 * critical_path_length(coarse)
        r = limit_sf(coarse, deadline)
        assert r.total_energy == pytest.approx(
            total_work(coarse) * r.point.energy_per_cycle)
        assert r.energy.idle == 0.0

    def test_loose_deadline_uses_critical_point(self, coarse, platform):
        r = limit_sf(coarse, 8 * critical_path_length(coarse))
        assert r.point is platform.ladder.critical_point()

    def test_tight_deadline_uses_faster_point(self, coarse, platform):
        r = limit_sf(coarse, 1.05 * critical_path_length(coarse))
        assert r.point.frequency > \
            platform.ladder.critical_point().frequency

    def test_deadline_equal_cpl_needs_full_speed(self, coarse, platform):
        r = limit_sf(coarse, critical_path_length(coarse))
        assert r.point is platform.ladder.max_point

    def test_below_cpl_raises(self, coarse):
        with pytest.raises(InfeasibleScheduleError):
            limit_sf(coarse, 0.9 * critical_path_length(coarse))

    def test_no_processor_count(self, coarse):
        r = limit_sf(coarse, 2 * critical_path_length(coarse))
        assert r.n_processors is None and r.schedule is None

    def test_tag(self, coarse):
        assert limit_sf(coarse, 2 * critical_path_length(coarse)) \
            .heuristic is Heuristic.LIMIT_SF


class TestLimitMf:
    def test_always_critical_point(self, coarse, platform):
        for k in (1.0, 2.0, 8.0):
            r = limit_mf(coarse, k * critical_path_length(coarse))
            assert r.point is platform.ladder.critical_point()

    def test_meets_deadline_flag(self, coarse, platform):
        tight = limit_mf(coarse, 1.0 * critical_path_length(coarse))
        loose = limit_mf(coarse, 8 * critical_path_length(coarse))
        # At the critical speed (0.41 fmax) a 1x deadline is missed.
        assert not tight.meets_deadline
        assert loose.meets_deadline

    def test_never_above_limit_sf(self, coarse):
        for k in (1.2, 2.0, 4.0):
            deadline = k * critical_path_length(coarse)
            assert limit_mf(coarse, deadline).total_energy <= \
                limit_sf(coarse, deadline).total_energy + 1e-15


class TestBoundsDominateHeuristics:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("factor", [1.5, 4.0])
    def test_ordering_chain(self, seed, factor):
        g = stg_random_graph(40, seed).scaled(3.1e6)
        res = paper_suite(g, factor * critical_path_length(g))
        e = {h: r.total_energy for h, r in res.items()}
        tol = 1e-9
        assert e[Heuristic.LIMIT_MF] <= e[Heuristic.LIMIT_SF] + tol
        assert e[Heuristic.LIMIT_SF] <= e[Heuristic.LAMPS_PS] * (1 + tol)
        assert e[Heuristic.LAMPS_PS] <= e[Heuristic.LAMPS] + tol
        assert e[Heuristic.LAMPS_PS] <= e[Heuristic.SNS_PS] + tol
        assert e[Heuristic.LAMPS] <= e[Heuristic.SNS] + tol
        assert e[Heuristic.SNS_PS] <= e[Heuristic.SNS] + tol
