"""Tests for the per-processor multi-frequency extension."""

import numpy as np
import pytest

from repro.core.lamps import lamps_ps
from repro.core.limits import limit_mf
from repro.core.multifreq import (
    multifreq_energy,
    per_processor_stretch,
    retime,
)
from repro.core.platform import default_platform
from repro.graphs.analysis import critical_path_length
from repro.graphs.generators import stg_random_graph
from repro.sched.deadlines import task_deadlines
from repro.sched.list_scheduler import list_schedule


@pytest.fixture(scope="module")
def instance():
    g = stg_random_graph(40, 17).scaled(3.1e6)
    return g, 2 * critical_path_length(g)


class TestRetime:
    def test_uniform_frequency_matches_cycle_schedule(self, instance):
        g, deadline = instance
        plat = default_platform()
        d = task_deadlines(g, deadline)
        s = list_schedule(g, 4, d)
        p = plat.ladder.max_point
        fin = retime(s, {proc: p for proc in range(4)})
        assert np.allclose(fin, s.finish_times / p.frequency)

    def test_slowing_one_processor_delays_cross_successors(self):
        # a on P0 feeds b on P1: halving P0's speed must delay b.
        from repro.graphs.dag import TaskGraph
        from repro.sched.schedule import Placement, Schedule

        g = TaskGraph({"a": 1e9, "b": 1e9}, [("a", "b")])
        s = Schedule(g, 2, [Placement("a", 0, 0, 1e9),
                            Placement("b", 1, 1e9, 2e9)])
        plat = default_platform()
        fast = plat.ladder.max_point
        slow = plat.ladder.slowest_at_least(fast.frequency / 2.5)
        fin_fast = retime(s, {0: fast, 1: fast})
        fin_mixed = retime(s, {0: slow, 1: fast})
        ib = g.index_of("b")
        assert fin_mixed[ib] > fin_fast[ib]
        # b itself still runs at full speed: its duration is unchanged.
        ia = g.index_of("a")
        assert fin_mixed[ib] - fin_mixed[ia] == pytest.approx(
            1e9 / fast.frequency)

    def test_precedence_preserved_under_any_assignment(self, instance):
        g, deadline = instance
        plat = default_platform()
        d = task_deadlines(g, deadline)
        s = list_schedule(g, 3, d)
        rng = np.random.default_rng(5)
        pts = {p: plat.ladder[int(rng.integers(6, len(plat.ladder)))]
               for p in range(3)}
        fin = retime(s, pts)
        for u, v in g.edges():
            iu, iv = g.index_of(u), g.index_of(v)
            w_v = g.weight(v)
            start_v = fin[iv] - w_v / pts[s.placement(v).processor].frequency
            assert start_v >= fin[iu] - 1e-9


class TestMultifreqEnergy:
    def test_matches_single_frequency_accounting(self, instance):
        from repro.core.energy import schedule_energy

        g, deadline = instance
        plat = default_platform()
        d = task_deadlines(g, deadline)
        s = list_schedule(g, 4, d)
        # The slowest point that still fits in the window.
        f_req = s.required_reference_frequency(d) * plat.fmax
        p = plat.ladder.slowest_at_least(f_req)
        fin = retime(s, {proc: p for proc in range(4)})
        seconds = plat.seconds(deadline)
        uniform = multifreq_energy(s, {proc: p for proc in range(4)},
                                   fin, seconds, platform=plat)
        reference = schedule_energy(s, p, seconds, sleep=plat.sleep)
        assert uniform.total == pytest.approx(reference.total, rel=1e-9)

    def test_overrunning_deadline_raises(self, instance):
        g, deadline = instance
        plat = default_platform()
        d = task_deadlines(g, deadline)
        s = list_schedule(g, 4, d)
        slow = plat.ladder[0]
        fin = retime(s, {proc: slow for proc in range(4)})
        with pytest.raises(ValueError, match="past the deadline"):
            multifreq_energy(s, {proc: slow for proc in range(4)},
                             fin, 1e-9, platform=plat)


class TestPerProcessorStretch:
    def test_never_worse_than_lamps_ps(self):
        for seed in range(4):
            g = stg_random_graph(40, seed).scaled(3.1e6)
            deadline = 1.5 * critical_path_length(g)
            base = lamps_ps(g, deadline)
            multi = per_processor_stretch(g, deadline)
            assert multi.total_energy <= base.total_energy + 1e-12

    def test_never_beats_limit_mf(self):
        for seed in range(4):
            g = stg_random_graph(40, seed).scaled(3.1e6)
            deadline = 1.5 * critical_path_length(g)
            multi = per_processor_stretch(g, deadline)
            bound = limit_mf(g, deadline)
            assert multi.total_energy >= bound.total_energy * (1 - 1e-9)

    def test_meets_deadlines(self, instance):
        g, deadline = instance
        plat = default_platform()
        multi = per_processor_stretch(g, deadline)
        d_seconds = task_deadlines(g, deadline) / plat.fmax
        assert np.all(multi.finish_seconds <= d_seconds * (1 + 1e-9))

    def test_can_use_multiple_frequencies(self):
        # Across a pool of graphs the heuristic finds at least one
        # instance where mixing frequencies pays.
        found = 0
        for seed in range(8):
            g = stg_random_graph(40, seed).scaled(3.1e6)
            deadline = 1.5 * critical_path_length(g)
            multi = per_processor_stretch(g, deadline)
            found += multi.distinct_frequencies > 1
        assert found >= 1

    def test_explicit_base_schedule(self, instance):
        g, deadline = instance
        base = lamps_ps(g, deadline)
        multi = per_processor_stretch(
            g, deadline, base_schedule=(base.schedule, base.point))
        assert multi.total_energy <= base.total_energy + 1e-12

    def test_infeasible_base_raises(self, instance):
        g, deadline = instance
        plat = default_platform()
        d = task_deadlines(g, deadline)
        s = list_schedule(g, 2, d)
        slow = plat.ladder[0]
        with pytest.raises(ValueError, match="misses"):
            per_processor_stretch(g, deadline,
                                  base_schedule=(s, slow))


class TestIslands:
    def test_single_island_matches_base(self, instance):
        # All processors in one island == the paper's single-frequency
        # model: the greedy cannot beat the already-optimal base point
        # by island moves alone, but may take one uniform step down if
        # feasible... starting from LAMPS+PS's stretch it cannot.
        g, deadline = instance
        base = lamps_ps(g, deadline)
        islands = {p: 0 for p in range(base.schedule.n_processors)}
        multi = per_processor_stretch(
            g, deadline, base_schedule=(base.schedule, base.point),
            islands=islands)
        assert multi.distinct_frequencies == 1

    def test_islands_bounded_by_independent(self):
        # Energy ordering: single island >= two islands >= fully
        # independent processors (each is a superset search space).
        for seed in (1, 3):
            g = stg_random_graph(40, seed).scaled(3.1e6)
            deadline = 1.5 * critical_path_length(g)
            base = lamps_ps(g, deadline)
            n = base.schedule.n_processors
            one = per_processor_stretch(
                g, deadline, base_schedule=(base.schedule, base.point),
                islands={p: 0 for p in range(n)})
            two = per_processor_stretch(
                g, deadline, base_schedule=(base.schedule, base.point),
                islands={p: p % 2 for p in range(n)})
            free = per_processor_stretch(
                g, deadline, base_schedule=(base.schedule, base.point))
            assert free.total_energy <= two.total_energy + 1e-9
            assert two.total_energy <= one.total_energy + 1e-9

    def test_island_members_share_frequency(self, instance):
        g, deadline = instance
        base = lamps_ps(g, deadline)
        n = base.schedule.n_processors
        islands = {p: p % 2 for p in range(n)}
        multi = per_processor_stretch(
            g, deadline, base_schedule=(base.schedule, base.point),
            islands=islands)
        freqs_by_island = {}
        for p, point in multi.points.items():
            freqs_by_island.setdefault(islands[p], set()).add(
                point.frequency)
        for fs in freqs_by_island.values():
            assert len(fs) == 1
