"""Tests for the energy-deadline Pareto exploration."""

import pytest

from repro.core.pareto import energy_deadline_front, knee_point
from repro.graphs import load_bundled


@pytest.fixture(scope="module")
def graph():
    return load_bundled("rand50_000").scaled(3.1e6)


@pytest.fixture(scope="module")
def front(graph):
    return energy_deadline_front(graph,
                                 factors=(1.0, 1.5, 2.0, 4.0, 8.0))


class TestFront:
    def test_ascending_deadlines(self, front):
        factors = [p.deadline_factor for p in front]
        assert factors == sorted(factors)

    def test_pruned_front_strictly_improves(self, front):
        energies = [p.energy for p in front]
        assert all(b < a for a, b in zip(energies, energies[1:]))

    def test_unpruned_keeps_all_factors(self, graph):
        pts = energy_deadline_front(graph, factors=(1.0, 2.0, 4.0),
                                    prune_dominated=False)
        assert [p.deadline_factor for p in pts] == [1.0, 2.0, 4.0]

    def test_tightest_point_runs_fastest(self, front):
        assert front[0].frequency == max(p.frequency for p in front)

    def test_results_carry_full_schedule(self, front):
        from repro.sched.validate import validate_schedule

        for p in front:
            validate_schedule(p.result.schedule)

    def test_heuristic_choice_matters(self, graph):
        ps = energy_deadline_front(graph, factors=(2.0,),
                                   heuristic="LAMPS+PS")
        plain = energy_deadline_front(graph, factors=(2.0,),
                                      heuristic="S&S")
        assert ps[0].energy <= plain[0].energy + 1e-12


class TestKnee:
    def test_knee_is_on_front(self, front):
        assert knee_point(front) in front

    def test_zero_threshold_gives_minimum(self, front):
        k = knee_point(front, threshold=0.0)
        assert k.energy == min(p.energy for p in front)

    def test_loose_threshold_gives_early_point(self, front):
        k = knee_point(front, threshold=0.9)
        assert k is front[0]

    def test_empty_front_rejected(self):
        with pytest.raises(ValueError):
            knee_point([])
