"""Differential and accounting tests for the plan cache (PR 9).

The plan-memoization layer claims that sharing built schedules,
deadline vectors, top levels and required-frequency ratios across the
heuristic suite changes *nothing* observable: every heuristic result —
and, end-to-end, the campaign report JSON and exec-cache files — is
byte-identical with reuse on, with reuse forcibly disabled, and with
width aliasing on or off.  Those claims are asserted here with exact
(``==``) comparisons, alongside the accounting the cache exposes: the
hit/miss counters must match the reuse predicted from the distinct
``(graph, n, policy, priority-fingerprint)`` configurations a search
requests, and the width-aliasing theorem must hold as a property of
the scheduler itself.
"""

import hashlib
import pathlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import evaluate_all, lamps_search, paper_suite
from repro.core.lamps import energy_vs_processors
from repro.core.plans import PlanCache, PlannedSweep, plan_scope, \
    sweep_energies
from repro.core.platform import default_platform
from repro.core.energy import schedule_energy_sweep
from repro.core.stretch import feasible_points, required_frequency
from repro.graphs.analysis import critical_path_length
from repro.graphs.generators import stg_random_graph
from repro.obs import ObsLog
from repro.sched.deadlines import task_deadlines
from repro.sched.list_scheduler import list_schedule

from ..exec.test_identity_regression import GOLDEN_CACHE, GOLDEN_REPORT, \
    _CAMPAIGN_KWARGS


def _instance(n=40, seed=3, factor=2.0):
    g = stg_random_graph(n, seed).scaled(3.1e6)
    return g, factor * critical_path_length(g)


def _disable_reuse(monkeypatch):
    """Force every PlanCache lookup to miss — the historical behaviour.

    Clearing the memo dicts before each lookup makes the cache a pure
    pass-through while keeping the build/audit/counter plumbing live,
    so a run under this patch replays pre-plan-cache execution.
    """
    for name in ("schedule", "deadline_vector", "top_levels", "ratio"):
        real = getattr(PlanCache, name)

        def wiped(self, *args, _real=real, **kwargs):
            self._exact.clear()
            self._stall_free.clear()
            self._deadline_vecs.clear()
            self._tops.clear()
            self._key_fps.clear()
            self._ratios.clear()
            return _real(self, *args, **kwargs)

        monkeypatch.setattr(PlanCache, name, wiped)


def assert_results_equal(got, want):
    assert set(got) == set(want)
    for h in want:
        a, b = got[h], want[h]
        assert a.energy == b.energy, h
        assert a.point == b.point, h
        assert a.n_processors == b.n_processors, h
        assert a.deadline_cycles == b.deadline_cycles, h
        assert a.meets_deadline == b.meets_deadline, h
        if (a.schedule is None) != (b.schedule is None):
            pytest.fail(f"{h}: schedule presence differs")
        if a.schedule is not None:
            assert np.array_equal(a.schedule.start_times,
                                  b.schedule.start_times), h
            assert np.array_equal(a.schedule.finish_times,
                                  b.schedule.finish_times), h
            assert np.array_equal(a.schedule.task_processors,
                                  b.schedule.task_processors), h


class TestCacheOnOffIdentity:
    @given(st.integers(min_value=0, max_value=2_000),
           st.sampled_from([12, 25, 40]),
           st.sampled_from([1.5, 2.0, 4.0]))
    @settings(max_examples=15, deadline=None)
    def test_suite_results_identical(self, seed, n, factor):
        g, deadline = _instance(n, seed, factor)
        shared = paper_suite(g, deadline, plans=PlanCache())
        with pytest.MonkeyPatch.context() as mp:
            _disable_reuse(mp)
            uncached = paper_suite(g, deadline, plans=PlanCache())
        assert_results_equal(shared, uncached)

    @given(st.integers(min_value=0, max_value=2_000))
    @settings(max_examples=10, deadline=None)
    def test_alias_on_off_identical(self, seed):
        g, deadline = _instance(seed=seed)
        aliased = evaluate_all(g, deadline, plans=PlanCache(alias=True))
        exact = evaluate_all(g, deadline, plans=PlanCache(alias=False))
        assert_results_equal(aliased, exact)

    def test_strict_audit_results_identical_to_shared(self):
        g, deadline = _instance()
        shared = paper_suite(g, deadline, plans=PlanCache())
        strict = paper_suite(g, deadline, strict=True)
        assert_results_equal(shared, strict)


class TestEndToEndBytes:
    """The campaign bytes cannot depend on plan reuse at all."""

    def test_report_sha_with_reuse_disabled(self, monkeypatch):
        from repro.exec import ExecOptions
        from tests.exec.test_identity_regression import _report_sha

        _disable_reuse(monkeypatch)
        sha = _report_sha(ExecOptions(jobs=1, batch=True,
                                      use_cache=False))
        assert sha == GOLDEN_REPORT

    def test_cache_files_with_reuse_disabled(self, tmp_path, monkeypatch):
        from repro.exec import ExecOptions
        from repro.experiments import fig10_11_relative_energy

        _disable_reuse(monkeypatch)
        fig10_11_relative_energy.run(
            exec_options=ExecOptions(jobs=1, batch=True, use_cache=True,
                                     cache_dir=tmp_path / "c"),
            **_CAMPAIGN_KWARGS)
        h = hashlib.sha256()
        for f in sorted(pathlib.Path(tmp_path / "c").rglob("*.json")):
            h.update(f.name.encode())
            h.update(f.read_bytes())
        assert h.hexdigest() == GOLDEN_CACHE


class TestHitMissAccounting:
    def test_one_build_per_distinct_config(self, monkeypatch):
        """LAMPS issues one list_schedule per distinct configuration.

        With aliasing off, misses must equal the number of distinct
        ``(n, policy, deadline-fingerprint)`` keys the search requested
        and hits cover every repeat, with the obs counters agreeing.
        """
        g, deadline = _instance(n=60, seed=9)
        plans = PlanCache(alias=False)
        obs = ObsLog()
        requested = []
        real = PlanCache.schedule

        def spy(self, graph, n, deadlines, **kwargs):
            requested.append((id(graph), n, kwargs.get("policy", "edf"),
                              None if deadlines is None
                              else deadlines.tobytes()))
            return real(self, graph, n, deadlines, **kwargs)

        monkeypatch.setattr(PlanCache, "schedule", spy)
        lamps_search(g, deadline, shutdown=True, plans=plans, obs=obs)
        distinct = len(set(requested))
        assert requested and distinct < len(requested)  # reuse happened
        assert plans.misses == distinct
        assert plans.hits == len(requested) - distinct
        assert obs.counters["plan_cache.misses"] == plans.misses
        assert obs.counters["plan_cache.hits"] == plans.hits
        assert obs.counters["sched.schedules_built"] == distinct

    def test_n_sweep_rerun_is_all_hits(self):
        """A second identical N-sweep on a warm cache builds nothing."""
        g, deadline = _instance(n=40, seed=5)
        plans = PlanCache(alias=False)
        first = energy_vs_processors(g, deadline, shutdown=True,
                                     plans=plans, obs=ObsLog())
        builds = plans.misses
        assert builds >= len(first)  # one per feasible count at least
        rerun_obs = ObsLog()
        second = energy_vs_processors(g, deadline, shutdown=True,
                                      plans=plans, obs=rerun_obs)
        assert second == first
        assert plans.misses == builds  # nothing new was built
        assert rerun_obs.counters.get("plan_cache.misses", 0) == 0
        assert rerun_obs.counters["plan_cache.hits"] > 0
        assert "sched.schedules_built" not in rerun_obs.counters

    def test_aliasing_reduces_builds(self):
        # Sweep well past the graph's width so counts beyond it are
        # stall-free and servable from one aliased plan.
        g, deadline = _instance(n=40, seed=5)
        exact = PlanCache(alias=False)
        energy_vs_processors(g, deadline, max_processors=16, plans=exact)
        aliased = PlanCache(alias=True)
        energy_vs_processors(g, deadline, max_processors=16,
                             plans=aliased)
        assert aliased.misses < exact.misses


class TestWidthAliasing:
    @given(st.integers(min_value=0, max_value=2_000),
           st.sampled_from([8, 20, 40]),
           st.sampled_from([2, 4, 8]))
    @settings(max_examples=40, deadline=None)
    def test_stall_free_schedules_are_width_invariant(self, seed, n,
                                                      procs):
        """The theorem itself: employed < n ⟹ identical for n' > n."""
        g, deadline = _instance(n, seed)
        d = task_deadlines(g, deadline)
        s = list_schedule(g, procs, d)
        if s.employed_processors == procs:
            return  # possibly stalled; the theorem says nothing
        wider = list_schedule(g, procs + 3, d)
        assert np.array_equal(s.start_times, wider.start_times)
        assert np.array_equal(s.finish_times, wider.finish_times)
        assert np.array_equal(s.task_processors, wider.task_processors)

    def test_cache_serves_wider_counts_from_stall_free_plan(self):
        g, deadline = _instance(n=20, seed=1)
        d = task_deadlines(g, deadline)
        plans = PlanCache(alias=True)
        base = plans.schedule(g, 16, d)
        assert base.employed_processors < 16
        assert plans.misses == 1
        again = plans.schedule(g, 32, d)
        assert again is base
        assert plans.hits == 1
        # An exact-width request below the employed count still builds.
        narrow = plans.schedule(g, 1, d)
        assert narrow is not base
        assert plans.misses == 2


class TestPlanScope:
    def test_audited_calls_get_fresh_exact_cache(self):
        from repro.audit.report import AuditLog

        shared = PlanCache()
        scoped = plan_scope(shared, AuditLog())
        assert scoped is not shared
        assert scoped.alias is False

    def test_unaudited_calls_share_or_create(self):
        shared = PlanCache()
        assert plan_scope(shared, None) is shared
        fresh = plan_scope(None, None)
        assert isinstance(fresh, PlanCache) and fresh.alias is True


class TestSweepEnergies:
    def test_matches_serial_sweeps_bitwise(self):
        platform = default_platform()
        g, deadline = _instance(n=30, seed=4)
        d = task_deadlines(g, deadline)
        window = platform.seconds(deadline)
        planned = []
        for procs in (2, 4, 8):
            s = list_schedule(g, procs, d)
            pts = feasible_points(
                platform.ladder, required_frequency(s, d, platform.fmax))
            planned.append(PlannedSweep(schedule=s, points=tuple(pts),
                                        sleep=platform.sleep))
        # Repeat one schedule so the dedup path is exercised.
        planned.append(PlannedSweep(schedule=planned[0].schedule,
                                    points=planned[0].points, sleep=None))
        got = sweep_energies(planned, window)
        want = [schedule_energy_sweep(ps.schedule, list(ps.points), window,
                                      sleep=ps.sleep) for ps in planned]
        assert got == want

    def test_empty(self):
        assert sweep_energies([], 1.0) == []
