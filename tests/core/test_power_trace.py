"""Unit tests for sim.trace: segment edge cases and trace accounting."""

import math

import pytest

from repro.sim.states import ProcState
from repro.sim.trace import PowerTrace, TraceSegment


class TestTraceSegmentEdgeCases:
    def test_mean_power_ordinary_segment(self):
        seg = TraceSegment(0, 0.0, 2.0, ProcState.RUN, energy=6.0)
        assert seg.duration == 2.0
        assert seg.mean_power == pytest.approx(3.0)

    def test_mean_power_impulse_with_energy_is_inf(self):
        # Zero-duration transition segments carry the impulse cost.
        seg = TraceSegment(0, 1.0, 1.0, ProcState.TRANS_DOWN,
                           energy=241.5e-6)
        assert seg.duration == 0.0
        assert seg.mean_power == math.inf

    def test_mean_power_zero_energy_impulse_is_zero(self):
        seg = TraceSegment(0, 1.0, 1.0, ProcState.TRANS_UP, energy=0.0)
        assert seg.mean_power == 0.0

    def test_end_before_start_rejected(self):
        with pytest.raises(ValueError, match="before it starts"):
            TraceSegment(0, 2.0, 1.0, ProcState.IDLE, energy=0.0)

    def test_negative_energy_rejected(self):
        with pytest.raises(ValueError, match="energy"):
            TraceSegment(0, 0.0, 1.0, ProcState.IDLE, energy=-1.0)

    def test_tiny_negative_duration_within_eps_allowed(self):
        # Floating-point noise below _EPS must not raise.
        seg = TraceSegment(0, 1.0, 1.0 - 1e-12, ProcState.IDLE,
                           energy=0.0)
        assert seg.duration == pytest.approx(0.0, abs=1e-11)


@pytest.fixture
def two_proc_trace():
    """Hand-built trace over [0, 10] s:

    proc 0: RUN [0,4] @ 2 W, IDLE [4,6] @ 0.5 W, RUN [6,10] @ 2 W
    proc 1: IDLE [0,2] @ 0.5 W, impulse down, SLEEP [2,9] @ 50 µW,
            impulse up, IDLE [9,10] @ 0.5 W
    """
    segs = [
        TraceSegment(0, 0.0, 4.0, ProcState.RUN, 8.0, task="a"),
        TraceSegment(0, 4.0, 6.0, ProcState.IDLE, 1.0),
        TraceSegment(0, 6.0, 10.0, ProcState.RUN, 8.0, task="b"),
        TraceSegment(1, 0.0, 2.0, ProcState.IDLE, 1.0),
        TraceSegment(1, 2.0, 2.0, ProcState.TRANS_DOWN, 241.5e-6),
        TraceSegment(1, 2.0, 9.0, ProcState.SLEEP, 7 * 50e-6),
        TraceSegment(1, 9.0, 9.0, ProcState.TRANS_UP, 241.5e-6),
        TraceSegment(1, 9.0, 10.0, ProcState.IDLE, 0.5),
    ]
    return PowerTrace(segs, horizon=10.0)


class TestPowerTraceAccounting:
    def test_validates(self, two_proc_trace):
        two_proc_trace.validate()

    def test_processors(self, two_proc_trace):
        assert two_proc_trace.processors == (0, 1)
        assert two_proc_trace.segments(99) == ()

    def test_total_energy_hand_computed(self, two_proc_trace):
        expected = (8.0 + 1.0 + 8.0            # proc 0
                    + 1.0 + 0.5                # proc 1 idle
                    + 2 * 241.5e-6 + 7 * 50e-6)  # transitions + sleep
        assert two_proc_trace.energy() == pytest.approx(expected)

    def test_energy_by_state_hand_computed(self, two_proc_trace):
        by_state = two_proc_trace.energy_by_state()
        assert by_state[ProcState.RUN] == pytest.approx(16.0)
        assert by_state[ProcState.IDLE] == pytest.approx(2.5)
        assert by_state[ProcState.SLEEP] == pytest.approx(350e-6)
        assert by_state[ProcState.TRANS_DOWN] == pytest.approx(241.5e-6)
        assert by_state[ProcState.TRANS_UP] == pytest.approx(241.5e-6)
        assert sum(by_state.values()) == \
            pytest.approx(two_proc_trace.energy())

    def test_time_in_state_hand_computed(self, two_proc_trace):
        t = two_proc_trace
        assert t.time_in_state(0, ProcState.RUN) == pytest.approx(8.0)
        assert t.time_in_state(0, ProcState.IDLE) == pytest.approx(2.0)
        assert t.time_in_state(0, ProcState.SLEEP) == 0.0
        assert t.time_in_state(1, ProcState.SLEEP) == pytest.approx(7.0)
        assert t.time_in_state(1, ProcState.IDLE) == pytest.approx(3.0)
        # Impulses contribute zero occupancy.
        assert t.time_in_state(1, ProcState.TRANS_DOWN) == 0.0

    def test_occupancy_covers_horizon(self, two_proc_trace):
        for proc in two_proc_trace.processors:
            covered = sum(
                two_proc_trace.time_in_state(proc, state)
                for state in ProcState)
            assert covered == pytest.approx(two_proc_trace.horizon)

    def test_utilization_hand_computed(self, two_proc_trace):
        assert two_proc_trace.utilization(0) == pytest.approx(0.8)
        assert two_proc_trace.utilization(1) == 0.0
        assert two_proc_trace.utilization(42) == 0.0  # unemployed

    def test_state_at(self, two_proc_trace):
        t = two_proc_trace
        assert t.state_at(0, 1.0) is ProcState.RUN
        assert t.state_at(0, 5.0) is ProcState.IDLE
        assert t.state_at(1, 5.0) is ProcState.SLEEP
        assert t.state_at(2, 5.0) is ProcState.OFF


class TestPowerTraceValidation:
    def test_gap_detected(self):
        trace = PowerTrace([
            TraceSegment(0, 0.0, 4.0, ProcState.RUN, 1.0),
            TraceSegment(0, 5.0, 10.0, ProcState.IDLE, 1.0),
        ], horizon=10.0)
        with pytest.raises(AssertionError, match="gap/overlap"):
            trace.validate()

    def test_late_start_detected(self):
        trace = PowerTrace(
            [TraceSegment(0, 1.0, 10.0, ProcState.IDLE, 1.0)],
            horizon=10.0)
        with pytest.raises(AssertionError, match="starts at"):
            trace.validate()

    def test_short_end_detected(self):
        trace = PowerTrace(
            [TraceSegment(0, 0.0, 9.0, ProcState.IDLE, 1.0)],
            horizon=10.0)
        with pytest.raises(AssertionError, match="horizon"):
            trace.validate()

    def test_only_impulses_detected(self):
        trace = PowerTrace(
            [TraceSegment(0, 0.0, 0.0, ProcState.TRANS_DOWN, 1e-6)],
            horizon=10.0)
        with pytest.raises(AssertionError, match="impulse"):
            trace.validate()

    def test_nonpositive_horizon_rejected(self):
        with pytest.raises(ValueError, match="horizon"):
            PowerTrace([], horizon=0.0)
