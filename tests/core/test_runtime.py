"""Tests for the runtime simulator and slack-reclamation policies."""

import numpy as np
import pytest

from repro.core import default_platform, lamps_ps, sns
from repro.graphs.analysis import critical_path_length
from repro.graphs.generators import stg_random_graph
from repro.graphs.transforms import weight_jitter
from repro.runtime import (
    fixed_frequency_policy,
    greedy_reclaim_policy,
    leakage_aware_reclaim_policy,
    simulate,
)
from repro.sched.deadlines import task_deadlines


@pytest.fixture(scope="module")
def plan():
    g = stg_random_graph(50, 4).scaled(3.1e6)
    deadline = 2 * critical_path_length(g)
    result = lamps_ps(g, deadline)
    d = task_deadlines(g, deadline)
    return g, result, d


@pytest.fixture(scope="module")
def actual(plan):
    g, _, _ = plan
    jittered = weight_jitter(g, 0.5, 3)
    return {v: jittered.weight(v) for v in g.node_ids}


class TestWcetReplay:
    def test_matches_planned_energy_exactly(self, plan):
        g, result, d = plan
        sim = simulate(result.schedule, result.point, d)
        assert sim.total_energy == pytest.approx(result.total_energy,
                                                 rel=1e-12)

    def test_no_deadline_misses(self, plan):
        g, result, d = plan
        sim = simulate(result.schedule, result.point, d)
        assert sim.deadline_misses == ()

    def test_finish_times_match_plan(self, plan):
        g, result, d = plan
        sim = simulate(result.schedule, result.point, d)
        expect = result.schedule.finish_times / result.point.frequency
        assert np.allclose(sim.finish_seconds, expect)


class TestActualTimes:
    def test_early_completion_saves_energy(self, plan, actual):
        g, result, d = plan
        wcet = simulate(result.schedule, result.point, d)
        act = simulate(result.schedule, result.point, d,
                       actual_cycles=actual)
        assert act.total_energy < wcet.total_energy
        assert act.makespan_seconds <= wcet.makespan_seconds + 1e-12

    def test_actual_above_wcet_rejected(self, plan):
        g, result, d = plan
        v = g.node_ids[0]
        with pytest.raises(ValueError, match="exceed"):
            simulate(result.schedule, result.point, d,
                     actual_cycles={v: g.weight(v) * 2})

    def test_partial_actual_map(self, plan):
        g, result, d = plan
        v = g.node_ids[0]
        sim = simulate(result.schedule, result.point, d,
                       actual_cycles={v: g.weight(v) / 2})
        assert sim.deadline_misses == ()


class TestSlackReclamation:
    def test_reclaim_never_misses_deadlines(self, plan, actual):
        g, result, d = plan
        plat = default_platform()
        for mk in (greedy_reclaim_policy, leakage_aware_reclaim_policy):
            sim = simulate(result.schedule, result.point, d,
                           actual_cycles=actual,
                           policy=mk(result.point, plat.ladder))
            assert sim.deadline_misses == ()

    def test_reclaim_saves_vs_no_reclaim(self, plan, actual):
        g, result, d = plan
        plat = default_platform()
        base = simulate(result.schedule, result.point, d,
                        actual_cycles=actual)
        rec = simulate(result.schedule, result.point, d,
                       actual_cycles=actual,
                       policy=greedy_reclaim_policy(result.point,
                                                    plat.ladder))
        assert rec.total_energy <= base.total_energy + 1e-12

    def test_leakage_aware_beats_greedy_here(self, plan, actual):
        # With leakage, reclaiming below the critical speed wastes
        # energy; the floored policy must not do worse.
        g, result, d = plan
        plat = default_platform()
        greedy = simulate(result.schedule, result.point, d,
                          actual_cycles=actual,
                          policy=greedy_reclaim_policy(result.point,
                                                       plat.ladder))
        aware = simulate(result.schedule, result.point, d,
                         actual_cycles=actual,
                         policy=leakage_aware_reclaim_policy(
                             result.point, plat.ladder))
        assert aware.total_energy <= greedy.total_energy + 1e-12

    def test_leakage_floor_respected(self, plan, actual):
        g, result, d = plan
        plat = default_platform()
        crit = plat.ladder.critical_point().frequency
        sim = simulate(result.schedule, result.point, d,
                       actual_cycles=actual,
                       policy=leakage_aware_reclaim_policy(
                           result.point, plat.ladder))
        for p in sim.task_points.values():
            assert p.frequency >= crit * (1 - 1e-9)

    def test_no_slack_means_planned_point(self, plan):
        # With worst-case times there is no dynamic slack to reclaim:
        # an S&S plan is already maximally stretched.
        g, result, d = plan
        plat = default_platform()
        base = sns(g, 2 * critical_path_length(g))
        sim = simulate(base.schedule, base.point, d,
                       policy=greedy_reclaim_policy(base.point,
                                                    plat.ladder))
        for p in sim.task_points.values():
            assert p.frequency <= base.point.frequency * (1 + 1e-9)


class TestFixedPolicy:
    def test_fixed_policy_returns_given_point(self, plan):
        g, result, d = plan
        pol = fixed_frequency_policy(result.point)
        sim = simulate(result.schedule, result.point, d, policy=pol)
        assert all(p is result.point for p in sim.task_points.values())
