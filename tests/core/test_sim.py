"""Tests for the trace-level simulator (states, traces, engine)."""

import pytest

from repro.core import default_platform, lamps_ps, schedule_energy, sns
from repro.graphs.analysis import critical_path_length
from repro.graphs.generators import stg_random_graph
from repro.sim import (
    DEFAULT_TRANSITIONS,
    PowerTrace,
    ProcState,
    TraceSegment,
    TransitionModel,
    execute,
)


@pytest.fixture(scope="module")
def plan():
    g = stg_random_graph(40, 4).scaled(3.1e6)
    deadline = 2 * critical_path_length(g)
    return lamps_ps(g, deadline)


class TestTransitionModel:
    def test_defaults_match_paper(self):
        assert DEFAULT_TRANSITIONS.energy == pytest.approx(483e-6)
        assert DEFAULT_TRANSITIONS.total_latency == 0.0

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            TransitionModel(down_latency=-1.0)

    def test_negative_energy_rejected(self):
        with pytest.raises(ValueError):
            TransitionModel(energy=-1.0)


class TestTraceSegment:
    def test_duration_and_mean_power(self):
        s = TraceSegment(0, 1.0, 3.0, ProcState.IDLE, 0.8)
        assert s.duration == 2.0
        assert s.mean_power == pytest.approx(0.4)

    def test_impulse_mean_power(self):
        s = TraceSegment(0, 1.0, 1.0, ProcState.TRANS_DOWN, 2e-4)
        assert s.mean_power == float("inf")

    def test_inverted_interval_rejected(self):
        with pytest.raises(ValueError):
            TraceSegment(0, 2.0, 1.0, ProcState.RUN, 0.1)

    def test_negative_energy_rejected(self):
        with pytest.raises(ValueError):
            TraceSegment(0, 0.0, 1.0, ProcState.RUN, -0.1)


class TestCrossValidation:
    def test_trace_equals_analytic_with_ps(self, plan):
        trace = execute(plan.schedule, plan.point, plan.deadline_seconds)
        trace.validate()
        assert trace.energy() == pytest.approx(plan.total_energy,
                                               rel=1e-12)

    def test_trace_equals_analytic_without_ps(self):
        g = stg_random_graph(40, 7).scaled(3.1e6)
        deadline = 2 * critical_path_length(g)
        r = sns(g, deadline)
        trace = execute(r.schedule, r.point, r.deadline_seconds,
                        shutdown=False)
        trace.validate()
        assert trace.energy() == pytest.approx(r.total_energy, rel=1e-12)

    @pytest.mark.parametrize("seed", range(4))
    def test_cross_validation_pool(self, seed):
        plat = default_platform()
        g = stg_random_graph(30, seed).scaled(3.1e6)
        deadline = 4 * critical_path_length(g)
        r = lamps_ps(g, deadline)
        trace = execute(r.schedule, r.point, r.deadline_seconds)
        analytic = schedule_energy(r.schedule, r.point,
                                   r.deadline_seconds, sleep=plat.sleep)
        assert trace.energy() == pytest.approx(analytic.total, rel=1e-12)

    def test_energy_by_state_sums_to_total(self, plan):
        trace = execute(plan.schedule, plan.point, plan.deadline_seconds)
        assert sum(trace.energy_by_state().values()) == pytest.approx(
            trace.energy())

    def test_run_energy_matches_busy(self, plan):
        plat = default_platform()
        trace = execute(plan.schedule, plan.point, plan.deadline_seconds)
        analytic = schedule_energy(plan.schedule, plan.point,
                                   plan.deadline_seconds,
                                   sleep=plat.sleep)
        assert trace.energy_by_state()[ProcState.RUN] == pytest.approx(
            analytic.busy)


class TestLatencies:
    def test_latencies_shrink_sleep_span(self, plan):
        instant = execute(plan.schedule, plan.point,
                          plan.deadline_seconds)
        slow = execute(plan.schedule, plan.point, plan.deadline_seconds,
                       transitions=TransitionModel(down_latency=1e-3,
                                                   up_latency=1e-3))
        for proc in instant.processors:
            assert slow.time_in_state(proc, ProcState.SLEEP) <= \
                instant.time_in_state(proc, ProcState.SLEEP) + 1e-12

    def test_huge_latency_disables_sleep(self, plan):
        trace = execute(plan.schedule, plan.point, plan.deadline_seconds,
                        transitions=TransitionModel(down_latency=1e6,
                                                    up_latency=1e6))
        for proc in trace.processors:
            assert trace.time_in_state(proc, ProcState.SLEEP) == 0.0

    def test_wake_finishes_before_next_task(self, plan):
        trans = TransitionModel(down_latency=5e-4, up_latency=5e-4)
        trace = execute(plan.schedule, plan.point, plan.deadline_seconds,
                        transitions=trans)
        for proc in trace.processors:
            segs = trace.segments(proc)
            for a, b in zip(segs, segs[1:]):
                if a.state is ProcState.TRANS_UP:
                    # A wake completes exactly where the next segment
                    # (task or window end) begins.
                    assert b.start == pytest.approx(a.end)


class TestTraceQueries:
    def test_state_at(self, plan):
        trace = execute(plan.schedule, plan.point, plan.deadline_seconds)
        first_task = plan.schedule.processor_tasks(0)[0]
        t_mid = (first_task.start + first_task.finish) / 2 \
            / plan.point.frequency
        assert trace.state_at(0, t_mid) is ProcState.RUN

    def test_state_at_out_of_range(self, plan):
        trace = execute(plan.schedule, plan.point, plan.deadline_seconds)
        with pytest.raises(ValueError):
            trace.state_at(0, plan.deadline_seconds * 2)

    def test_unemployed_processor_is_off(self, plan):
        trace = execute(plan.schedule, plan.point, plan.deadline_seconds)
        ghost = plan.schedule.n_processors + 5
        assert trace.state_at(ghost, 0.0) is ProcState.OFF

    def test_utilization_bounds(self, plan):
        trace = execute(plan.schedule, plan.point, plan.deadline_seconds)
        for proc in trace.processors:
            assert 0.0 < trace.utilization(proc) <= 1.0

    def test_validate_catches_gap(self):
        segs = [
            TraceSegment(0, 0.0, 1.0, ProcState.RUN, 0.1),
            TraceSegment(0, 2.0, 3.0, ProcState.IDLE, 0.1),  # hole 1..2
        ]
        trace = PowerTrace(segs, 3.0)
        with pytest.raises(AssertionError, match="gap"):
            trace.validate()

    def test_validate_catches_short_horizon(self):
        segs = [TraceSegment(0, 0.0, 1.0, ProcState.RUN, 0.1)]
        trace = PowerTrace(segs, 5.0)
        with pytest.raises(AssertionError, match="ends"):
            trace.validate()


class TestEngineErrors:
    def test_window_too_small_raises(self, plan):
        with pytest.raises(ValueError, match="window"):
            execute(plan.schedule, plan.point,
                    plan.deadline_seconds / 100)


class TestRenderTrace:
    def test_rows_and_legend(self, plan):
        from repro.sim.render import render_trace

        trace = execute(plan.schedule, plan.point, plan.deadline_seconds)
        out = render_trace(trace)
        rows = [l for l in out.splitlines() if l.startswith("P")]
        assert len(rows) == len(trace.processors)
        assert "# run" in out

    def test_running_and_sleeping_glyphs_present(self, plan):
        from repro.sim.render import render_trace

        trace = execute(plan.schedule, plan.point, plan.deadline_seconds)
        out = render_trace(trace, width=100)
        assert "#" in out
        # This plan's trailing gaps sleep.
        assert "z" in out

    def test_width_validation(self, plan):
        from repro.sim.render import render_trace

        trace = execute(plan.schedule, plan.point, plan.deadline_seconds)
        with pytest.raises(ValueError):
            render_trace(trace, width=4)
