"""Tests for Schedule & Stretch (S&S) and S&S+PS."""

import pytest

from repro.core.results import Heuristic, InfeasibleScheduleError
from repro.core.sns import schedule_and_stretch, sns, sns_ps
from repro.graphs.analysis import critical_path_length
from repro.graphs.generators import stg_random_graph
from repro.sched.validate import validate_schedule


@pytest.fixture
def coarse_fig4(fig4_graph):
    return fig4_graph.scaled(3.1e6)


class TestSns:
    def test_heuristic_tag(self, coarse_fig4):
        r = sns(coarse_fig4, 2 * critical_path_length(coarse_fig4))
        assert r.heuristic is Heuristic.SNS

    def test_schedule_is_valid_and_meets_deadline(self, coarse_fig4,
                                                  platform):
        deadline = 2 * critical_path_length(coarse_fig4)
        r = sns(coarse_fig4, deadline)
        validate_schedule(r.schedule)
        makespan_s = r.schedule.makespan / r.point.frequency
        assert makespan_s <= r.deadline_seconds * (1 + 1e-9)

    def test_stretches_to_slowest_feasible(self, coarse_fig4, platform):
        deadline = 2 * critical_path_length(coarse_fig4)
        r = sns(coarse_fig4, deadline)
        slower = [p for p in platform.ladder
                  if p.frequency < r.point.frequency]
        for p in slower:
            assert r.schedule.makespan / p.frequency > \
                r.deadline_seconds * (1 - 1e-9)

    def test_loose_deadlines_backfire_without_ps(self, coarse_fig4):
        # The leakage effect the paper motivates: S&S keeps processors
        # on until the deadline, so a very loose deadline *costs* energy
        # (idle leakage) — while S&S+PS keeps improving or holds.
        cpl = critical_path_length(coarse_fig4)
        e_sns = [sns(coarse_fig4, k * cpl).total_energy for k in (1.5, 8)]
        assert e_sns[1] > e_sns[0]
        e_ps = [sns_ps(coarse_fig4, k * cpl).total_energy
                for k in (1.5, 2, 4, 8)]
        # "Holds" up to the residual sleep power over the longer window
        # (50 µW x a few ms — orders below the busy energy).
        assert all(b <= a * (1 + 1e-3) for a, b in zip(e_ps, e_ps[1:]))
        assert e_ps[-1] < e_ps[0]

    def test_employs_makespan_minimizing_processors(self, coarse_fig4):
        r = sns(coarse_fig4, 1.5 * critical_path_length(coarse_fig4))
        # Fig. 4's example needs 3 processors for the minimum makespan.
        assert r.n_processors == 3

    def test_tight_deadline_runs_fast(self, coarse_fig4, platform):
        cpl = critical_path_length(coarse_fig4)
        r = sns(coarse_fig4, 1.0 * cpl)
        assert r.point is platform.ladder.max_point

    def test_infeasible_deadline_raises(self, coarse_fig4):
        from repro.sched.deadlines import InfeasibleDeadlineError

        cpl = critical_path_length(coarse_fig4)
        with pytest.raises((InfeasibleScheduleError,
                            InfeasibleDeadlineError)):
            sns(coarse_fig4, 0.5 * cpl)

    def test_max_processors_cap(self, coarse_fig4):
        deadline = 2 * critical_path_length(coarse_fig4)
        r = schedule_and_stretch(coarse_fig4, deadline, max_processors=1)
        assert r.n_processors == 1

    def test_zero_processors_rejected(self, coarse_fig4):
        with pytest.raises(ValueError):
            schedule_and_stretch(coarse_fig4, 1e9, max_processors=0)


class TestSnsPs:
    def test_heuristic_tag(self, coarse_fig4):
        r = sns_ps(coarse_fig4, 2 * critical_path_length(coarse_fig4))
        assert r.heuristic is Heuristic.SNS_PS

    def test_never_worse_than_sns(self, coarse_fig4):
        for k in (1.5, 2, 4, 8):
            deadline = k * critical_path_length(coarse_fig4)
            assert sns_ps(coarse_fig4, deadline).total_energy <= \
                sns(coarse_fig4, deadline).total_energy + 1e-12

    def test_never_worse_than_sns_random_graphs(self):
        for seed in range(4):
            g = stg_random_graph(40, seed).scaled(3.1e6)
            deadline = 2 * critical_path_length(g)
            assert sns_ps(g, deadline).total_energy <= \
                sns(g, deadline).total_energy + 1e-12

    def test_may_run_faster_than_max_stretch(self):
        # With PS the best frequency is at or above the S&S one (scaling
        # below the critical speed never helps when gaps can sleep).
        g = stg_random_graph(40, 3).scaled(3.1e6)
        deadline = 8 * critical_path_length(g)
        fast = sns_ps(g, deadline)
        slow = sns(g, deadline)
        assert fast.point.frequency >= slow.point.frequency - 1e-9

    def test_fine_grain_rarely_shuts_down(self, fig4_graph):
        # 10 µs tasks leave gaps far below the ~ms breakeven.
        g = fig4_graph.scaled(3.1e4)
        r = sns_ps(g, 2 * critical_path_length(g))
        assert r.energy.n_shutdowns == 0

    def test_coarse_grain_uses_shutdown_on_loose_deadline(self):
        g = stg_random_graph(40, 3).scaled(3.1e6)
        r = sns_ps(g, 8 * critical_path_length(g))
        assert r.energy.n_shutdowns > 0


class TestResultFields:
    def test_deadline_fields_consistent(self, coarse_fig4, platform):
        deadline = 2 * critical_path_length(coarse_fig4)
        r = sns(coarse_fig4, deadline)
        assert r.deadline_cycles == deadline
        assert r.deadline_seconds == pytest.approx(deadline / platform.fmax)

    def test_total_energy_matches_breakdown(self, coarse_fig4):
        r = sns_ps(coarse_fig4, 4 * critical_path_length(coarse_fig4))
        assert r.total_energy == pytest.approx(r.energy.total)
