"""Tests for schedule stretching (frequency selection)."""

import pytest

from repro.core.stretch import feasible_points, required_frequency, \
    stretch_point
from repro.sched.deadlines import task_deadlines
from repro.sched.list_scheduler import list_schedule


class TestRequiredFrequency:
    def test_exactly_meeting_deadline(self, diamond, platform):
        d = task_deadlines(diamond, 10.0)
        s = list_schedule(diamond, 2, d)
        # Makespan 5 in reference cycles, deadline 10: half speed.
        f = required_frequency(s, d, platform.fmax)
        assert f == pytest.approx(0.5 * platform.fmax)

    def test_scales_inverse_with_deadline(self, diamond, platform):
        d1 = task_deadlines(diamond, 10.0)
        d2 = task_deadlines(diamond, 20.0)
        s = list_schedule(diamond, 2, d1)
        assert required_frequency(s, d2, platform.fmax) == pytest.approx(
            0.5 * required_frequency(s, d1, platform.fmax))


class TestStretchPoint:
    def test_picks_slowest_feasible(self, ladder):
        f_req = 0.5 * (ladder[4].frequency + ladder[5].frequency)
        assert stretch_point(ladder, f_req) is ladder[5]

    def test_exact_ladder_frequency_not_rounded_up(self, ladder):
        # A requirement equal (within fp noise) to a ladder point must
        # select that point, not the next one.
        p = ladder[6]
        assert stretch_point(ladder, p.frequency * (1 + 1e-12)) is p

    def test_infeasible_raises(self, ladder):
        with pytest.raises(ValueError):
            stretch_point(ladder, ladder.fmax * 1.1)


class TestFeasiblePoints:
    def test_ascending_and_feasible(self, ladder):
        pts = feasible_points(ladder, ladder[3].frequency)
        assert pts[0] is ladder[3]
        freqs = [p.frequency for p in pts]
        assert freqs == sorted(freqs)

    def test_zero_requirement_gives_whole_ladder(self, ladder):
        assert len(feasible_points(ladder, 0.0)) == len(ladder)

    def test_empty_when_impossible(self, ladder):
        assert feasible_points(ladder, ladder.fmax * 2) == ()
