"""Tests that the fast paper_suite agrees with the individual heuristics."""

import pytest

from repro.core.api import schedule
from repro.core.results import Heuristic
from repro.core.suite import paper_suite
from repro.graphs.analysis import critical_path_length
from repro.graphs.generators import stg_random_graph


class TestAgreement:
    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("factor", [1.5, 4.0])
    def test_matches_individual_calls(self, seed, factor):
        g = stg_random_graph(40, seed).scaled(3.1e6)
        deadline = factor * critical_path_length(g)
        fast = paper_suite(g, deadline)
        for h in Heuristic:
            slow = schedule(g, deadline, heuristic=h)
            assert fast[h].total_energy == pytest.approx(
                slow.total_energy, rel=1e-12), h
            assert fast[h].n_processors == slow.n_processors, h

    def test_presentation_order(self, fig4_graph):
        g = fig4_graph.scaled(3.1e6)
        res = paper_suite(g, 2 * critical_path_length(g))
        assert list(res) == [Heuristic.SNS, Heuristic.LAMPS,
                             Heuristic.SNS_PS, Heuristic.LAMPS_PS,
                             Heuristic.LIMIT_SF, Heuristic.LIMIT_MF]

    def test_infeasible_raises(self, fig4_graph):
        from repro.core.results import InfeasibleScheduleError
        from repro.sched.deadlines import InfeasibleDeadlineError

        g = fig4_graph.scaled(3.1e6)
        with pytest.raises((InfeasibleScheduleError,
                            InfeasibleDeadlineError)):
            paper_suite(g, 0.5 * critical_path_length(g))
