"""Tests for the report-rendering utilities."""

import pytest

from repro.util.tables import (
    format_percent,
    format_si,
    render_scatter,
    render_series,
    render_table,
)


class TestRenderTable:
    def test_alignment_and_headers(self):
        out = render_table(["name", "value"],
                           [("a", 1), ("long-name", 22)])
        lines = out.splitlines()
        assert lines[0].endswith("value")
        assert all(len(l) == len(lines[0]) for l in lines[:2])

    def test_title(self):
        out = render_table(["x"], [(1,)], title="T")
        assert out.splitlines()[0] == "T"

    def test_float_formatting(self):
        out = render_table(["v"], [(0.123456789,)])
        assert "0.1235" in out

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError, match="cells"):
            render_table(["a", "b"], [(1,)])

    def test_empty_rows_ok(self):
        out = render_table(["a"], [])
        assert "a" in out


class TestRenderSeries:
    def test_columns(self):
        out = render_series("x", [1, 2], {"y": [10, 20], "z": [30, 40]})
        assert "y" in out and "z" in out
        assert "40" in out

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="points"):
            render_series("x", [1, 2], {"y": [1]})


class TestRenderScatter:
    def test_marks_and_legend(self):
        out = render_scatter({"alpha": [(0, 0), (1, 1)],
                              "beta": [(0.5, 0.5)]})
        assert "a=alpha" in out and "b=beta" in out
        grid = "\n".join(out.splitlines()[1:-2])
        assert "a" in grid and "b" in grid

    def test_overlap_shows_star(self):
        out = render_scatter({"alpha": [(0, 0)], "beta": [(0, 0)]},
                             width=8, height=4)
        assert "*" in out

    def test_degenerate_single_point(self):
        out = render_scatter({"s": [(1.0, 2.0)]})
        assert "s" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_scatter({"s": []})

    def test_axis_ranges_reported(self):
        out = render_scatter({"s": [(1, 5), (3, 9)]},
                             x_label="par", y_label="e")
        assert "par: 1 .. 3" in out
        assert "[5, 9]" in out


class TestFormatters:
    def test_si_prefixes(self):
        assert format_si(3.1e9, "Hz") == "3.1 GHz"
        assert format_si(483e-6, "J") == "483 µJ"
        assert format_si(50e-6, "W") == "50 µW"
        assert format_si(0.0, "W") == "0 W"

    def test_si_tiny_values(self):
        assert "p" in format_si(1e-13, "F")

    def test_percent(self):
        assert format_percent(0.463) == "46.3%"
        assert format_percent(1.0) == "100.0%"


class TestApiDocsGenerator:
    def test_generator_runs_and_covers_packages(self, tmp_path,
                                                monkeypatch):
        import importlib.util
        from pathlib import Path

        spec = importlib.util.spec_from_file_location(
            "gen_api_docs",
            Path(__file__).resolve().parents[2] / "tools"
            / "gen_api_docs.py")
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        for pkg in mod.SUBPACKAGES:
            importlib.import_module(pkg)  # every listed package imports
        # describe() yields one row per __all__ entry.
        import repro.power

        rows = mod.describe(repro.power)
        assert {r[0] for r in rows} == set(repro.power.__all__)
        assert all(r[3] for r in rows)  # everything documented
