"""Unit tests for the content-addressed result cache."""

import json
import os
import subprocess
import sys

import pytest

from repro.core.platform import default_platform
from repro.core.suite import paper_suite
from repro.exec import cache as cache_mod
from repro.exec.cache import (
    CACHE_SCHEMA_VERSION,
    ResultCache,
    instance_digest,
    restore_results,
    summarize_results,
)
from repro.graphs.analysis import critical_path_length
from repro.graphs.generators import stg_random_graph


@pytest.fixture
def instance():
    g = stg_random_graph(30, 7, name="rand30").scaled(3.1e6)
    return g, 2.0 * critical_path_length(g)


@pytest.fixture
def payload(instance, platform):
    g, deadline = instance
    return summarize_results(paper_suite(g, deadline, platform=platform))


class TestDigest:
    def test_equal_inputs_equal_keys(self, instance, platform):
        g, deadline = instance
        # A freshly rebuilt but identical graph must map to the same key.
        g2 = stg_random_graph(30, 7, name="rand30").scaled(3.1e6)
        assert instance_digest(g, deadline, platform, "edf") == \
            instance_digest(g2, deadline, platform, "edf")

    def test_key_covers_every_input(self, instance, platform):
        g, deadline = instance
        base = instance_digest(g, deadline, platform, "edf")
        assert instance_digest(g, deadline * 1.5, platform, "edf") != base
        assert instance_digest(g, deadline, platform, "hlfet") != base
        assert instance_digest(g.scaled(2.0), deadline, platform,
                               "edf") != base
        from repro.core.platform import Platform
        from repro.power.shutdown import SleepModel

        leaky = Platform(sleep=SleepModel(sleep_power=99e-6))
        assert instance_digest(g, deadline, leaky, "edf") != base

    def test_overrides_participate(self, instance, platform):
        g, deadline = instance
        node = g.node_ids[0]
        base = instance_digest(g, deadline, platform, "edf")
        tight = instance_digest(g, deadline, platform, "edf",
                                deadline_overrides={node: deadline / 2})
        assert tight != base

    def test_callable_policy_rejected(self, instance, platform):
        g, deadline = instance
        with pytest.raises(TypeError):
            instance_digest(g, deadline, platform, lambda g, d: d)

    def test_stable_across_process_restarts(self, instance, platform):
        """The key must not depend on the hash seed or process state."""
        g, deadline = instance
        code = (
            "from repro.graphs.generators import stg_random_graph\n"
            "from repro.core.platform import default_platform\n"
            "from repro.exec.cache import instance_digest\n"
            "g = stg_random_graph(30, 7, name='rand30').scaled(3.1e6)\n"
            f"print(instance_digest(g, {deadline!r}, default_platform(), "
            "'edf'))\n"
        )
        env = dict(os.environ, PYTHONHASHSEED="12345")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p)
        out = subprocess.run([sys.executable, "-c", code], env=env,
                             capture_output=True, text=True, check=True)
        assert out.stdout.strip() == \
            instance_digest(g, deadline, platform, "edf")


class TestRoundTrip:
    def test_summaries_restore_exactly(self, instance, platform, payload):
        g, deadline = instance
        results = paper_suite(g, deadline, platform=platform)
        # ... and through JSON text, which is what the cache stores.
        restored = restore_results(json.loads(json.dumps(payload)))
        assert list(restored) == list(results)
        for h, r in results.items():
            assert restored[h].total_energy == r.total_energy
            assert restored[h].energy == r.energy
            assert restored[h].point == r.point
            assert restored[h].n_processors == r.n_processors
            assert restored[h].meets_deadline == r.meets_deadline
            assert restored[h].schedule is None  # summaries only


class TestResultCache:
    def test_miss_then_hit(self, tmp_path, instance, platform, payload):
        g, deadline = instance
        cache = ResultCache(tmp_path)
        key = instance_digest(g, deadline, platform, "edf")
        assert cache.get(key) is None
        cache.put(key, payload)
        assert cache.get(key) == payload
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.bytes_read > 0
        assert cache.stats.bytes_written > 0
        assert cache.stats.hit_rate == 0.5

    def test_schema_version_changes_key(self, instance, platform):
        g, deadline = instance
        assert instance_digest(g, deadline, platform, "edf") != \
            instance_digest(g, deadline, platform, "edf",
                            schema=CACHE_SCHEMA_VERSION + 1)

    def test_schema_bump_orphans_pre_bump_entries(self, tmp_path, instance,
                                                  platform, payload):
        """Results cached before the Phase-1/plateau search fixes were
        computed by a (rarely) different search and must never be served
        again: the schema bump must both re-key the digest and reject a
        literal schema-1 entry found under the current key."""
        g, deadline = instance
        assert CACHE_SCHEMA_VERSION >= 2  # the bump actually happened
        assert instance_digest(g, deadline, platform, "edf", schema=1) != \
            instance_digest(g, deadline, platform, "edf")
        cache = ResultCache(tmp_path)
        key = instance_digest(g, deadline, platform, "edf")
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"schema": 1, "results": payload}))
        assert cache.get(key) is None      # stale version is a miss...
        assert not path.exists()           # ...and the entry is dropped

    def test_schema_version_invalidates_entry(self, tmp_path, instance,
                                              platform, payload,
                                              monkeypatch):
        g, deadline = instance
        cache = ResultCache(tmp_path)
        key = instance_digest(g, deadline, platform, "edf")
        cache.put(key, payload)
        monkeypatch.setattr(cache_mod, "CACHE_SCHEMA_VERSION",
                            CACHE_SCHEMA_VERSION + 1)
        assert cache.get(key) is None          # stale entry is a miss...
        assert not cache.path_for(key).exists()  # ...and is dropped

    @pytest.mark.parametrize("corruption", [
        "", "{", '{"schema": 1, "results": ', "not json at all",
        '{"schema": 1}', '{"schema": 1, "results": 42}',
    ])
    def test_corrupt_entry_falls_back_to_recompute(
            self, tmp_path, instance, platform, payload, corruption):
        g, deadline = instance
        cache = ResultCache(tmp_path)
        key = instance_digest(g, deadline, platform, "edf")
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text(corruption)
        assert cache.get(key) is None
        assert not path.exists()
        cache.put(key, payload)  # recompute-and-store works afterwards
        assert cache.get(key) == payload

    def test_atomic_write_leaves_no_partial_files(
            self, tmp_path, instance, platform, payload):
        g, deadline = instance
        cache = ResultCache(tmp_path)
        key = instance_digest(g, deadline, platform, "edf")
        cache.put(key, payload)
        cache.put(key, payload)  # overwrite is atomic too
        files = [p for p in tmp_path.rglob("*") if p.is_file()]
        assert files == [cache.path_for(key)]
        json.loads(files[0].read_text())  # the surviving file is complete

    def test_binary_garbage_entry_is_a_miss(self, tmp_path, instance,
                                            platform, payload):
        """Non-UTF-8 bytes must count as a corrupt miss, not crash.

        ``read_text`` raises ``UnicodeDecodeError`` here, which is *not*
        an ``OSError`` — an implementation reading text would let it
        escape the miss handling and take down the caller."""
        g, deadline = instance
        cache = ResultCache(tmp_path)
        key = instance_digest(g, deadline, platform, "edf")
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"\xff\xfe\x00garbage\x80\x81")
        assert cache.get(key) is None
        assert not path.exists()
        cache.put(key, payload)
        assert cache.get(key) == payload

    def test_corrupt_drop_revalidates_before_unlink(
            self, tmp_path, instance, platform, payload, monkeypatch):
        """A corrupt read that a concurrent put has since replaced must
        be served, not unlinked.

        The race: this process reads corrupt bytes; before it unlinks
        them, another process ``os.replace``\\ s a *valid* entry at the
        same path.  A blind unlink would destroy that fresh write.  The
        interleaving is simulated by handing ``_get`` corrupt bytes on
        the first read while the file on disk is already valid."""
        g, deadline = instance
        cache = ResultCache(tmp_path)
        key = instance_digest(g, deadline, platform, "edf")
        cache.put(key, payload)  # the concurrent put has already landed

        real_read = cache._read_entry
        raced = {"done": False}

        def corrupt_once(path):
            if not raced["done"]:
                raced["done"] = True
                return b"truncated garb"
            return real_read(path)

        monkeypatch.setattr(cache, "_read_entry", corrupt_once)
        # Served as a hit from the re-read under the shard lock...
        assert cache.get(key) == payload
        assert raced["done"]
        # ...and the valid entry was NOT destroyed.
        assert cache.path_for(key).exists()
        monkeypatch.undo()
        assert cache.get(key) == payload


class TestEviction:
    def _fill(self, cache, platform, instance, n, pad=2000):
        """Store ``n`` distinct keyed entries of ~``pad`` bytes each."""
        g, deadline = instance
        keys = []
        for i in range(n):
            key = instance_digest(g, deadline * (1 + i), platform, "edf")
            cache.put(key, [{"i": i, "pad": "x" * pad}])
            keys.append(key)
        return keys

    def test_unbounded_cache_never_evicts(self, tmp_path, instance,
                                          platform):
        cache = ResultCache(tmp_path)  # max_bytes=None
        keys = self._fill(cache, platform, instance, 8)
        assert cache.stats.evictions == 0
        assert all(cache.get(k) is not None for k in keys)

    def test_put_bounds_the_tree(self, tmp_path, instance, platform):
        cache = ResultCache(tmp_path, max_bytes=10_000)
        self._fill(cache, platform, instance, 20)
        assert cache.total_bytes() <= 10_000
        assert cache.stats.evictions > 0
        files = list(tmp_path.rglob("*.json"))
        assert 0 < len(files) < 20

    def test_eviction_is_least_recently_used(self, tmp_path, instance,
                                             platform):
        cache = ResultCache(tmp_path, max_bytes=1 << 30)
        keys = self._fill(cache, platform, instance, 6)
        # Age five entries far into the past; keep one recent.
        for key in keys[:-1]:
            os.utime(cache.path_for(key), (1.0, 1.0))
        cache.max_bytes = cache.path_for(keys[-1]).stat().st_size
        sweep = cache.evict()
        assert sweep.entries_removed == 5
        assert cache.get(keys[-1]) is not None  # the recent one survives
        assert all(cache.get(k) is None for k in keys[:-1])

    def test_hit_refreshes_recency(self, tmp_path, instance, platform):
        cache = ResultCache(tmp_path, max_bytes=1 << 30)
        keys = self._fill(cache, platform, instance, 6)
        for key in keys:
            os.utime(cache.path_for(key), (1.0, 1.0))
        assert cache.get(keys[0]) is not None  # the hit bumps atime
        cache.max_bytes = cache.path_for(keys[0]).stat().st_size
        cache.evict()
        assert cache.get(keys[0]) is not None
        assert all(cache.get(k) is None for k in keys[1:])

    def test_sweep_removes_aged_tmp_keeps_fresh(self, tmp_path, instance,
                                                platform):
        cache = ResultCache(tmp_path, max_bytes=None, tmp_ttl_seconds=60)
        self._fill(cache, platform, instance, 1)
        shard = next(p for p in tmp_path.iterdir() if p.is_dir())
        aged = shard / "dead-writer.tmp"
        aged.write_text("partial")
        os.utime(aged, (1.0, 1.0))
        fresh = shard / "live-writer.tmp"
        fresh.write_text("partial")
        sweep = cache.evict()  # unbounded: sweeps orphans only
        assert sweep.tmp_removed == 1
        assert sweep.entries_removed == 0
        assert not aged.exists()
        assert fresh.exists()
        assert cache.stats.tmp_swept == 1

    def test_total_bytes_counts_entries_only(self, tmp_path, instance,
                                             platform):
        cache = ResultCache(tmp_path)
        self._fill(cache, platform, instance, 3)
        want = sum(p.stat().st_size for p in tmp_path.rglob("*.json"))
        assert cache.total_bytes() == want
