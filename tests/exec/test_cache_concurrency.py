"""Multi-process safety of the result cache.

The :mod:`repro.serve` service runs many writers against one cache
tree — possibly alongside campaign processes sharing the directory.
These tests drive the store from real concurrent processes and assert
the multi-writer contract:

* no reader ever observes a partial or corrupt payload (atomic
  replace + bytes-validated decode),
* a valid entry is never lost to a concurrent corrupt-entry unlink
  (the satellite-1 race: revalidate under the shard lock), and
* ``*.tmp`` orphans of SIGKILLed writers are swept by the eviction
  pass — and only aged ones.

Workers are separate interpreter processes (not threads): advisory
``flock`` serialises *processes*, which is the deployment reality.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.exec.cache import ResultCache

pytestmark = pytest.mark.skipif(
    not hasattr(__import__("os"), "fork"),
    reason="multi-process cache tests need POSIX")


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p)
    return env


def _payload_for(i):
    """The deterministic payload every process stores under key ``i``."""
    return [{"instance": i, "energy": i * 1.25, "pad": "x" * (50 + i)}]


def _keys(n):
    """Distinct synthetic 64-hex keys spread across shards."""
    return [f"{i:02x}" + "ab" * 31 for i in range(n)]


WORKER = textwrap.dedent("""\
    import json, sys
    from repro.exec.cache import ResultCache

    root, seed, rounds, n_keys = (sys.argv[1], int(sys.argv[2]),
                                  int(sys.argv[3]), int(sys.argv[4]))

    def payload_for(i):
        return [{"instance": i, "energy": i * 1.25,
                 "pad": "x" * (50 + i)}]

    keys = [f"{i:02x}" + "ab" * 31 for i in range(n_keys)]
    cache = ResultCache(root)
    bad = 0
    for r in range(rounds):
        for i, key in enumerate(keys):
            if (r + seed + i) % 3 == 0:
                cache.put(key, payload_for(i))
            else:
                got = cache.get(key)
                # The one invariant: absent or byte-exact — never a
                # torn/partial/foreign payload.
                if got is not None and got != payload_for(i):
                    bad += 1
        if seed == 0 and r % 4 == 3:
            cache.evict()  # concurrent maintenance passes are legal too
    print(json.dumps({"bad": bad, "hits": cache.stats.hits,
                      "misses": cache.stats.misses}))
    """)


class TestConcurrentStress:
    def test_concurrent_get_put_evict_never_tears(self, tmp_path):
        """4 processes x interleaved get/put/evict: every observed
        payload must be byte-identical to what a serial run stores."""
        n_keys, rounds = 8, 24
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", WORKER, str(tmp_path), str(seed),
                 str(rounds), str(n_keys)],
                env=_env(), stdout=subprocess.PIPE, text=True)
            for seed in range(4)
        ]
        reports = []
        for p in procs:
            out, _ = p.communicate(timeout=120)
            assert p.returncode == 0
            reports.append(json.loads(out))
        assert all(r["bad"] == 0 for r in reports)
        assert sum(r["hits"] for r in reports) > 0

        # Quiesced: the tree serves exactly the serial payloads.
        cache = ResultCache(tmp_path)
        for i, key in enumerate(_keys(n_keys)):
            got = cache.get(key)
            assert got is None or got == _payload_for(i)
        # ... and holds no stray files beyond entries.
        stray = [p for p in tmp_path.rglob("*")
                 if p.is_file() and p.suffix != ".json"]
        assert stray == []

    def test_corrupt_drop_vs_put_race_two_processes(self, tmp_path):
        """Loop the satellite-1 interleaving across two real processes:
        a reader hitting corrupt bytes races a writer replacing them
        with a valid entry.  Whatever the timing, the end state must be
        the writer's valid entry — a blind unlink loses it."""
        key = _keys(1)[0]
        script = textwrap.dedent("""\
            import sys
            from repro.exec.cache import ResultCache
            root, role, key = sys.argv[1], sys.argv[2], sys.argv[3]
            cache = ResultCache(root)
            payload = [{"instance": 0, "energy": 0.0, "pad": "x" * 50}]
            for _ in range(200):
                if role == "reader":
                    got = cache.get(key)
                    assert got in (None, payload), got
                else:
                    cache.put(key, payload)
            """)
        for _ in range(5):
            cache = ResultCache(tmp_path)
            path = cache.path_for(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_bytes(b"{corrupt")
            procs = [
                subprocess.Popen(
                    [sys.executable, "-c", script, str(tmp_path), role,
                     key], env=_env())
                for role in ("reader", "writer")
            ]
            for p in procs:
                assert p.wait(timeout=120) == 0
            # The writer's last put must have survived the reader's
            # corrupt-entry handling.
            assert cache.get(key) == _payload_for(0)


class TestTmpOrphanLifecycle:
    def test_sigkilled_writer_orphan_is_swept(self, tmp_path):
        """A writer killed between ``mkstemp`` and ``os.replace`` leaks
        its tmp (``finally`` never runs); the eviction pass reclaims it
        once aged."""
        key = _keys(1)[0]
        script = textwrap.dedent("""\
            import os, signal, sys, tempfile
            from repro.exec.cache import ResultCache
            cache = ResultCache(sys.argv[1])
            path = cache.path_for(sys.argv[2])
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            os.write(fd, b'{"schema": 2, "resu')  # mid-entry...
            os.fsync(fd)
            os.kill(os.getpid(), signal.SIGKILL)  # ...and gone
            """)
        proc = subprocess.run(
            [sys.executable, "-c", script, str(tmp_path), key],
            env=_env(), timeout=120)
        assert proc.returncode == -signal.SIGKILL
        cache = ResultCache(tmp_path, tmp_ttl_seconds=0.0)
        orphans = list(tmp_path.rglob("*.tmp"))
        assert len(orphans) == 1  # the leak is real
        time.sleep(0.05)  # let the orphan age past the zero TTL
        sweep = cache.evict()
        assert sweep.tmp_removed == 1
        assert not orphans[0].exists()

    def test_fresh_tmp_survives_the_sweep(self, tmp_path):
        """A *live* writer's tmp (younger than the TTL) is never taken
        for an orphan."""
        key = _keys(1)[0]
        cache = ResultCache(tmp_path, tmp_ttl_seconds=3600.0)
        shard = cache.path_for(key).parent
        shard.mkdir(parents=True)
        live_tmp = shard / "inflight.tmp"
        live_tmp.write_text("partial write in progress")
        sweep = cache.evict()
        assert sweep.tmp_removed == 0
        assert live_tmp.exists()
