"""Determinism test: parallelism and caching are invisible in results.

Runs a small fig10-style campaign three ways — serial with the cache
off, 4-way parallel with the cache off, and 4-way parallel against a
warm cache — and asserts the three result payloads are *equal after a
JSON round-trip* and in fact byte-identical, the acceptance bar for
the ``repro.exec`` runner.
"""

import json

import pytest

from repro.exec import ExecOptions
from repro.experiments import fig10_11_relative_energy
from repro.experiments.registry import COARSE


def _campaign(exec_options=None):
    return fig10_11_relative_energy.run(
        scenario=COARSE, graphs_per_group=2, sizes=(50,),
        deadline_factors=(1.5, 2.0), include_applications=False,
        exec_options=exec_options)


@pytest.fixture(scope="module")
def serial_report():
    return _campaign(ExecOptions(jobs=1, use_cache=False))


def test_parallel_equals_serial(serial_report):
    parallel = _campaign(ExecOptions(jobs=4, use_cache=False))
    assert json.loads(parallel.to_json()) == \
        json.loads(serial_report.to_json())
    assert parallel.to_json() == serial_report.to_json()


def test_warm_cache_equals_serial(serial_report, tmp_path):
    cache_dir = tmp_path / "cache"
    cold = _campaign(ExecOptions(jobs=4, cache_dir=cache_dir))
    warm_options = ExecOptions(jobs=4, cache_dir=cache_dir)
    warm = _campaign(warm_options)

    for report in (cold, warm):
        assert json.loads(report.to_json()) == \
            json.loads(serial_report.to_json())
        assert report.to_json() == serial_report.to_json()

    stats = warm_options.open_cache().stats
    assert stats.misses == 0 and stats.hits == stats.lookups > 0
    assert stats.hit_rate > 0.9  # the acceptance criterion's bar


def test_no_cache_flag_bypasses_store(tmp_path):
    options = ExecOptions(jobs=1, cache_dir=tmp_path / "c", use_cache=False)
    _campaign(options)
    assert options.open_cache() is None
    assert not (tmp_path / "c").exists()
