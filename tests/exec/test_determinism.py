"""Determinism test: parallelism and caching are invisible in results.

Runs a small fig10-style campaign three ways — serial with the cache
off, 4-way parallel with the cache off, and 4-way parallel against a
warm cache — and asserts the three result payloads are *equal after a
JSON round-trip* and in fact byte-identical, the acceptance bar for
the ``repro.exec`` runner.
"""

import json

import pytest

from repro.exec import ExecOptions
from repro.experiments import fig10_11_relative_energy
from repro.experiments.registry import COARSE


def _campaign(exec_options=None):
    return fig10_11_relative_energy.run(
        scenario=COARSE, graphs_per_group=2, sizes=(50,),
        deadline_factors=(1.5, 2.0), include_applications=False,
        exec_options=exec_options)


@pytest.fixture(scope="module")
def serial_report():
    return _campaign(ExecOptions(jobs=1, use_cache=False))


def test_parallel_equals_serial(serial_report):
    parallel = _campaign(ExecOptions(jobs=4, use_cache=False))
    assert json.loads(parallel.to_json()) == \
        json.loads(serial_report.to_json())
    assert parallel.to_json() == serial_report.to_json()


def test_warm_cache_equals_serial(serial_report, tmp_path):
    cache_dir = tmp_path / "cache"
    cold = _campaign(ExecOptions(jobs=4, cache_dir=cache_dir))
    warm_options = ExecOptions(jobs=4, cache_dir=cache_dir)
    warm = _campaign(warm_options)

    for report in (cold, warm):
        assert json.loads(report.to_json()) == \
            json.loads(serial_report.to_json())
        assert report.to_json() == serial_report.to_json()

    stats = warm_options.open_cache().stats
    assert stats.misses == 0 and stats.hits == stats.lookups > 0
    assert stats.hit_rate > 0.9  # the acceptance criterion's bar


def test_vectorized_sweep_is_invisible(serial_report, monkeypatch):
    """The one-shot ladder sweep must not perturb campaign bytes.

    Reruns the campaign with the search loops forced onto a per-point
    scalar ``schedule_energy`` loop (the pre-kernel evaluation path)
    and asserts the report is byte-identical to the normal run, which
    uses ``schedule_energy_sweep``.
    """
    import importlib

    from repro.core.energy import schedule_energy

    # repro.core re-exports functions named like their modules, so go
    # through importlib to reach the modules themselves.
    lamps_mod = importlib.import_module("repro.core.lamps")
    sns_mod = importlib.import_module("repro.core.sns")

    def scalar_sweep(schedule, points, deadline_seconds, *, sleep=None):
        return [schedule_energy(schedule, p, deadline_seconds, sleep=sleep)
                for p in points]

    monkeypatch.setattr(lamps_mod, "schedule_energy_sweep", scalar_sweep)
    monkeypatch.setattr(sns_mod, "schedule_energy_sweep", scalar_sweep)
    scalar = _campaign(ExecOptions(jobs=1, use_cache=False))
    assert scalar.to_json() == serial_report.to_json()


def test_no_cache_flag_bypasses_store(tmp_path):
    options = ExecOptions(jobs=1, cache_dir=tmp_path / "c", use_cache=False)
    _campaign(options)
    assert options.open_cache() is None
    assert not (tmp_path / "c").exists()
