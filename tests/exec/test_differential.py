"""Differential test: paper_suite == six independent schedule() calls.

The parallel runner leans on :func:`paper_suite`'s shared-schedule-cache
optimisation; this test pins that optimisation against the unshared
:func:`repro.core.api.schedule` path on a broad sample of registry
instances, so a regression in the sharing would surface here before it
could silently poison cached results.
"""

import random

import pytest

from repro.core.api import schedule
from repro.core.results import Heuristic
from repro.core.suite import paper_suite
from repro.experiments.registry import COARSE, DEADLINE_FACTORS, \
    benchmark_suite
from repro.graphs.analysis import critical_path_length

N_INSTANCES = 20


def _registry_instances():
    """~20 random (graph, deadline) instances from the registry."""
    suite = benchmark_suite(graphs_per_group=3, sizes=(50, 100),
                            include_applications=False, seed=2006)
    pool = [(COARSE.apply(g), factor)
            for graphs in suite.values() for g in graphs
            for factor in DEADLINE_FACTORS]
    rng = random.Random(2006)
    return rng.sample(pool, N_INSTANCES)


@pytest.mark.parametrize("case", _registry_instances(),
                         ids=lambda c: f"{c[0].name}-x{c[1]}")
def test_suite_matches_independent_calls(case, platform):
    graph, factor = case
    deadline = factor * critical_path_length(graph)
    fast = paper_suite(graph, deadline, platform=platform)
    assert list(fast) == list(Heuristic)  # presentation order
    for h in Heuristic:
        slow = schedule(graph, deadline, heuristic=h, platform=platform)
        assert fast[h].total_energy == pytest.approx(
            slow.total_energy, rel=1e-12), h
        assert fast[h].n_processors == slow.n_processors, h
        if slow.point is None:
            assert fast[h].point is None, h
        else:
            # The chosen operating point is identical, not just close.
            assert fast[h].point.frequency == slow.point.frequency, h
            assert fast[h].point.vdd == slow.point.vdd, h
