"""End-to-end byte-identity pins across every execution configuration.

The acceptance bar for the batched/shm/JIT work is that *no* execution
knob may change a single byte of what a campaign produces: the report
JSON and the cache files must be SHA-256-identical across serial,
batched, parallel, shared-memory, JIT and forced-fallback runs — and
identical to what pre-batching revisions produced.  The golden digests
below pin exactly that.

If one of these tests fails after an *intentional* energy-model or
search change, recompute the digests from the per-instance serial path
(``ExecOptions(jobs=1, batch=False, use_cache=False)``) and bump
:data:`repro.exec.cache.CACHE_SCHEMA_VERSION`; if it fails after a
performance or transport change, the change broke bit-exactness.
"""

import hashlib
import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro.exec import ExecOptions
from repro.exec.cache import CACHE_SCHEMA_VERSION
from repro.experiments import fig10_11_relative_energy
from repro.experiments.registry import COARSE

#: SHA-256 of the campaign report JSON, recorded from the per-instance
#: serial path before the batched kernel existed.
GOLDEN_REPORT = \
    "870949ecb2c49d2d40b8a9bdb4ae6b7759a7c5a0f92fa3b32cc4cf377b4bcf95"
#: SHA-256 over the sorted cache entries (name + bytes) of the same
#: campaign, same provenance.
GOLDEN_CACHE = \
    "89c08666a87a922d2fd5113d6624d8f9b13045bed524cfae004c98a2095af6af"

_CAMPAIGN_KWARGS = dict(
    scenario=COARSE, graphs_per_group=2, sizes=(50,),
    deadline_factors=(1.5, 2.0), include_applications=False)


def _report_sha(options):
    report = fig10_11_relative_energy.run(exec_options=options,
                                          **_CAMPAIGN_KWARGS)
    return hashlib.sha256(report.to_json().encode()).hexdigest()


def _cache_sha(cache_dir):
    h = hashlib.sha256()
    for f in sorted(pathlib.Path(cache_dir).rglob("*.json")):
        h.update(f.name.encode())
        h.update(f.read_bytes())
    return h.hexdigest()


class TestReportIdentity:
    @pytest.mark.parametrize("label,kwargs", [
        ("per-instance serial", dict(jobs=1, batch=False)),
        ("batched serial", dict(jobs=1, batch=True)),
        ("batched parallel shm", dict(jobs=2, batch=True, shm=True)),
        ("batched parallel pickle", dict(jobs=2, batch=True, shm=False)),
        ("per-instance parallel", dict(jobs=2, batch=False)),
    ])
    def test_report_matches_golden(self, label, kwargs):
        sha = _report_sha(ExecOptions(use_cache=False, **kwargs))
        assert sha == GOLDEN_REPORT, f"{label} diverged from the pin"

    def test_report_identical_without_numba(self):
        """The kernel-vs-fallback gate may not leak into results.

        Runs the campaign in a subprocess with ``REPRO_NO_NUMBA=1`` —
        the gate is read at import time, so an env toggle needs a fresh
        interpreter.  With numba absent this exercises flag handling;
        with numba present it pins the compiled kernel's output to the
        interpreted loop's.
        """
        code = (
            "import hashlib\n"
            "from repro.exec import ExecOptions\n"
            "from repro.experiments import fig10_11_relative_energy\n"
            "from repro.experiments.registry import COARSE\n"
            "report = fig10_11_relative_energy.run(\n"
            "    scenario=COARSE, graphs_per_group=2, sizes=(50,),\n"
            "    deadline_factors=(1.5, 2.0), include_applications=False,\n"
            "    exec_options=ExecOptions(jobs=1, use_cache=False))\n"
            "print(hashlib.sha256(report.to_json().encode()).hexdigest())\n"
        )
        env = dict(os.environ, REPRO_NO_NUMBA="1")
        src = str(pathlib.Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run([sys.executable, "-c", code], env=env,
                             capture_output=True, text=True, check=True)
        assert out.stdout.strip() == GOLDEN_REPORT


class TestCacheIdentity:
    def test_schema_version_unchanged(self):
        """Batching is transport/evaluation only — same payload schema."""
        assert CACHE_SCHEMA_VERSION == 2

    @pytest.mark.parametrize("label,kwargs", [
        ("per-instance serial", dict(jobs=1, batch=False)),
        ("batched serial", dict(jobs=1, batch=True)),
        ("batched parallel shm", dict(jobs=2, batch=True, shm=True)),
    ])
    def test_cache_files_match_golden(self, tmp_path, label, kwargs):
        opts = ExecOptions(cache_dir=tmp_path / "c", **kwargs)
        fig10_11_relative_energy.run(exec_options=opts, **_CAMPAIGN_KWARGS)
        assert _cache_sha(tmp_path / "c") == GOLDEN_CACHE, \
            f"{label} wrote different cache bytes"
        entries = sorted((tmp_path / "c").rglob("*.json"))
        assert entries, "the campaign should have populated the cache"
        for f in entries:
            assert json.loads(f.read_text())["schema"] == \
                CACHE_SCHEMA_VERSION


class TestFailureAttribution:
    def test_batched_failure_names_the_instance(self):
        """An infeasible instance inside a chunk must surface with the
        same exception, attributed to its own index — not the chunk's."""
        from repro.sched.deadlines import InfeasibleDeadlineError
        from repro.exec.runner import evaluate_suite_instances
        from repro.graphs.generators import stg_random_graph
        from repro.graphs.analysis import critical_path_length

        instances = []
        for seed in range(4):
            g = stg_random_graph(15, seed).scaled(3.1e6)
            instances.append((g, 2.0 * critical_path_length(g)))
        bad = stg_random_graph(15, 99).scaled(3.1e6)
        # Deadline below the critical path: infeasible at any speed.
        instances.insert(2, (bad, 0.5 * critical_path_length(bad)))

        def fail(**kwargs):
            with pytest.raises(InfeasibleDeadlineError) as excinfo:
                evaluate_suite_instances(
                    instances, options=ExecOptions(**kwargs))
            return excinfo.value

        serial = fail(jobs=1, batch=False)
        batched = fail(jobs=1, batch=True, batch_chunk=2)
        parallel = fail(jobs=2, batch=True, shm=True, batch_chunk=2)
        assert str(serial) == str(batched) == str(parallel)
        assert batched.instance_index == 2
        assert parallel.instance_index == 2


class TestBatchedSuiteEquivalence:
    def test_paper_suite_batch_matches_serial_loop(self):
        """Direct API-level pin: chunk evaluation == instance loop."""
        from repro.core.suite import paper_suite, paper_suite_batch
        from repro.graphs.generators import stg_random_graph
        from repro.graphs.analysis import critical_path_length

        instances = []
        for seed, n, factor in [(0, 20, 1.6), (1, 35, 2.2), (2, 12, 1.2),
                                (3, 27, 3.0)]:
            g = stg_random_graph(n, seed).scaled(3.1e6)
            instances.append((g, factor * critical_path_length(g)))
        batched = paper_suite_batch(instances)
        for (g, d), got in zip(instances, batched):
            want = paper_suite(g, d)
            assert list(got) == list(want)
            for h in want:
                assert got[h].energy == want[h].energy
                assert got[h].point == want[h].point
                assert got[h].n_processors == want[h].n_processors
                assert got[h].meets_deadline == want[h].meets_deadline
