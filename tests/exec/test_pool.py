"""Unit tests for the chunked process-pool fan-out."""

import sys

import pytest

from repro.exec.pool import InstanceResult, run_instances


# Workers must live at module level so the pool can pickle them.
def _square(x):
    return x * x


def _boom_on_three(x):
    if x == 3:
        raise ValueError("instance 3 is cursed")
    return x


class TestSerial:
    def test_empty_input(self):
        assert run_instances(_square, [], jobs=1) == []
        assert run_instances(_square, [], jobs=4) == []

    def test_values_and_order(self):
        results = run_instances(_square, list(range(7)), jobs=1)
        assert [r.value for r in results] == [x * x for x in range(7)]
        assert [r.index for r in results] == list(range(7))

    def test_per_instance_timing(self):
        results = run_instances(_square, [1, 2], jobs=1)
        assert all(isinstance(r, InstanceResult) and r.seconds >= 0.0
                   for r in results)

    def test_exception_propagates(self):
        with pytest.raises(ValueError, match="cursed"):
            run_instances(_boom_on_three, [1, 2, 3, 4], jobs=1)

    def test_progress_ordering(self):
        calls = []
        run_instances(_square, list(range(5)), jobs=1,
                      progress=lambda done, total: calls.append((done, total)))
        assert calls == [(i, 5) for i in range(1, 6)]

    def test_bad_jobs_rejected(self):
        with pytest.raises(ValueError):
            run_instances(_square, [1], jobs=0)


class TestParallel:
    def test_matches_serial(self):
        serial = run_instances(_square, list(range(11)), jobs=1)
        parallel = run_instances(_square, list(range(11)), jobs=3,
                                 chunksize=2)
        assert [r.value for r in parallel] == [r.value for r in serial]
        assert [r.index for r in parallel] == [r.index for r in serial]

    def test_more_jobs_than_items(self):
        results = run_instances(_square, [5], jobs=8)
        assert [r.value for r in results] == [25]

    def test_worker_exception_propagates(self):
        with pytest.raises(ValueError, match="cursed"):
            run_instances(_boom_on_three, list(range(8)), jobs=2,
                          chunksize=1)

    def test_progress_monotonic_and_complete(self):
        calls = []
        run_instances(_square, list(range(9)), jobs=3, chunksize=2,
                      progress=lambda done, total: calls.append((done, total)))
        dones = [d for d, _ in calls]
        assert dones == sorted(dones)           # strictly increasing...
        assert len(set(dones)) == len(dones)
        assert dones[-1] == 9                   # ...and reaches the total
        assert all(t == 9 for _, t in calls)


class _Unreprable:
    def __repr__(self):
        raise RuntimeError("repr is broken too")

    def __eq__(self, other):
        raise TypeError("do not compare me")


def _boom_always(x):
    raise KeyError("no such entry")


class TestFailureIdentification:
    """Worker exceptions name the failing item (index + repr)."""

    def test_serial_exception_carries_index_and_repr(self):
        with pytest.raises(ValueError, match="cursed") as excinfo:
            run_instances(_boom_on_three, [10, 20, 3, 40], jobs=1)
        assert excinfo.value.instance_index == 2
        assert excinfo.value.instance_repr == "3"

    def test_parallel_exception_carries_index_and_repr(self):
        with pytest.raises(ValueError, match="cursed") as excinfo:
            run_instances(_boom_on_three, list(range(8)), jobs=2,
                          chunksize=2)
        # Attributes survive the pool's pickle round-trip.
        assert excinfo.value.instance_index == 3
        assert excinfo.value.instance_repr == "3"

    def test_original_exception_type_preserved(self):
        with pytest.raises(KeyError) as excinfo:
            run_instances(_boom_always, ["only"], jobs=1)
        assert excinfo.value.instance_index == 0
        assert excinfo.value.instance_repr == "'only'"

    @pytest.mark.skipif(sys.version_info < (3, 11),
                        reason="add_note needs Python >= 3.11")
    def test_note_names_the_instance(self):
        with pytest.raises(ValueError) as excinfo:
            run_instances(_boom_on_three, [1, 2, 3], jobs=1)
        notes = getattr(excinfo.value, "__notes__", [])
        assert any("instance 2: 3" in n for n in notes)

    def test_truncation_and_broken_repr(self):
        from repro.exec.pool import _identify_failure

        exc = ValueError("x")
        _identify_failure(exc, 7, "y" * 2000)
        assert len(exc.instance_repr) == 500
        assert exc.instance_repr.endswith("...")

        exc2 = ValueError("x")
        _identify_failure(exc2, 0, _Unreprable())
        assert exc2.instance_repr == "<unreprable _Unreprable>"
        assert exc2.instance_index == 0
