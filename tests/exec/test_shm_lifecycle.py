"""Lifecycle tests for the shared-memory pool transport.

The :mod:`repro.exec.shm` contract is byte-exact transport plus a hard
cleanup guarantee: after any :func:`repro.exec.pool.run_instances_shm`
call — normal completion, a worker raising, or a worker killed outright
— every reserved segment is gone.  Leaked ``/dev/shm`` segments
accumulate across campaign runs until the machine's shm fills, so the
guarantee is asserted here for each exit path, by name.
"""

import os
import signal

import numpy as np
import pytest

from repro.exec.pool import run_instances, run_instances_shm
from repro.exec.shm import publish_array, reserve_names, segment_exists, \
    take_array, unlink_segment


def _payload(spec):
    """Build a deterministic array from (seed, shape) — runs in workers."""
    seed, shape = spec
    rng = np.random.default_rng(seed)
    return rng.standard_normal(shape)


def _boom_on_two(spec):
    seed, _ = spec
    if seed == 2:
        raise RuntimeError("instance two exploded")
    return _payload(spec)


def _kill_on_two(spec):
    seed, _ = spec
    if seed == 2:
        os.kill(os.getpid(), signal.SIGKILL)
    return _payload(spec)


class TestRoundTrip:
    def test_publish_take_byte_exact(self):
        arr = np.random.default_rng(0).standard_normal((7, 11))
        handle = publish_array(arr)
        back = take_array(handle)
        assert back.tobytes() == arr.tobytes()
        assert back.dtype == arr.dtype and back.shape == arr.shape
        assert not segment_exists(handle.name)

    def test_take_unlinks_exactly_once(self):
        handle = publish_array(np.arange(5.0))
        take_array(handle)
        with pytest.raises(FileNotFoundError):
            take_array(handle)

    def test_empty_array_round_trip(self):
        handle = publish_array(np.empty((0, 17)))
        back = take_array(handle)
        assert back.shape == (0, 17)

    def test_empty_array_keeps_dtype_and_unlinks(self):
        """The zero-size path (1-byte pad segment) must preserve dtype
        and release its segment like any other take."""
        handle = publish_array(np.empty((0, 6, 16), dtype=np.float64))
        assert segment_exists(handle.name)
        back = take_array(handle)
        assert back.shape == (0, 6, 16)
        assert back.dtype == np.float64
        assert not segment_exists(handle.name)

    def test_empty_int_array_round_trip(self):
        back = take_array(publish_array(np.empty((3, 0), dtype=np.int32)))
        assert back.shape == (3, 0) and back.dtype == np.int32

    def test_non_contiguous_publish(self):
        arr = np.arange(24.0).reshape(4, 6)[:, ::2]
        handle = publish_array(np.ascontiguousarray(arr))
        assert np.array_equal(take_array(handle), arr)

    def test_unlink_segment_is_idempotent(self):
        handle = publish_array(np.arange(3.0))
        assert unlink_segment(handle.name) is True
        assert unlink_segment(handle.name) is False
        assert unlink_segment("rpnope-never-existed") is False

    def test_reserved_names_are_fresh_and_bounded(self):
        names = reserve_names(16)
        assert len(set(names)) == 16
        # macOS limits shm names to ~31 chars (incl. the leading slash).
        assert all(len(n) <= 30 for n in names)
        assert all(not segment_exists(n) for n in names)

    def test_reserving_starts_the_resource_tracker(self):
        """reserve_names must pre-start the tracker so forked workers
        inherit it — per-worker trackers would warn about "leaked"
        segments the coordinator in fact unlinked."""
        from multiprocessing import resource_tracker

        reserve_names(1)
        assert resource_tracker._resource_tracker._check_alive()


class TestPoolTransport:
    SPECS = [(seed, (5, 17)) for seed in range(8)]

    def test_parallel_matches_serial_byte_exact(self):
        serial = run_instances(_payload, self.SPECS, jobs=1)
        shm = run_instances_shm(_payload, self.SPECS, jobs=3)
        for a, b in zip(serial, shm):
            assert a.index == b.index
            assert a.value.tobytes() == b.value.tobytes()

    def test_no_segments_leak_on_success(self, monkeypatch):
        reserved = []
        import repro.exec.pool as pool_mod
        real = pool_mod.reserve_names

        def spy(count, **kw):
            names = real(count, **kw)
            reserved.extend(names)
            return names

        monkeypatch.setattr(pool_mod, "reserve_names", spy)
        run_instances_shm(_payload, self.SPECS, jobs=2)
        assert reserved, "the transport should have reserved names"
        assert all(not segment_exists(n) for n in reserved)

    def test_no_segments_leak_after_worker_raise(self, monkeypatch):
        reserved = []
        import repro.exec.pool as pool_mod
        real = pool_mod.reserve_names

        def spy(count, **kw):
            names = real(count, **kw)
            reserved.extend(names)
            return names

        monkeypatch.setattr(pool_mod, "reserve_names", spy)
        with pytest.raises(RuntimeError, match="exploded"):
            run_instances_shm(_boom_on_two, self.SPECS, jobs=2,
                              chunksize=2)
        assert reserved
        assert all(not segment_exists(n) for n in reserved)

    def test_no_segments_leak_after_worker_kill(self, monkeypatch):
        from concurrent.futures.process import BrokenProcessPool

        reserved = []
        import repro.exec.pool as pool_mod
        real = pool_mod.reserve_names

        def spy(count, **kw):
            names = real(count, **kw)
            reserved.extend(names)
            return names

        monkeypatch.setattr(pool_mod, "reserve_names", spy)
        with pytest.raises(BrokenProcessPool):
            run_instances_shm(_kill_on_two, self.SPECS, jobs=2,
                              chunksize=2)
        assert reserved
        assert all(not segment_exists(n) for n in reserved)

    def test_worker_raise_keeps_instance_attribution(self):
        with pytest.raises(RuntimeError) as excinfo:
            run_instances_shm(_boom_on_two, self.SPECS, jobs=2,
                              chunksize=2)
        assert excinfo.value.instance_index == 2

    def test_serial_path_bypasses_shm(self):
        out = run_instances_shm(_payload, self.SPECS[:3], jobs=1)
        want = run_instances(_payload, self.SPECS[:3], jobs=1)
        for a, b in zip(out, want):
            assert a.value.tobytes() == b.value.tobytes()

    def test_progress_monotonic_and_complete(self):
        seen = []
        run_instances_shm(_payload, self.SPECS, jobs=2, chunksize=3,
                          progress=lambda d, t: seen.append((d, t)))
        dones = [d for d, _ in seen]
        assert dones == sorted(dones)
        assert seen[-1] == (len(self.SPECS), len(self.SPECS))

    def test_empty_result_arrays_through_the_pool(self):
        """Workers returning zero-size arrays must round-trip the shm
        transport — the server's fully-warm / empty-dispatch shape."""
        specs = [(seed, (0, 17)) for seed in range(4)]
        out = run_instances_shm(_payload, specs, jobs=2, chunksize=2)
        assert len(out) == len(specs)
        for item in out:
            assert item.value.shape == (0, 17)

    def test_suite_chunk_worker_empty_chunk(self):
        """A zero-instance chunk encodes to a (0, 6, 16) block instead
        of tripping ``np.stack`` on an empty list."""
        from repro.exec.runner import _suite_chunk_worker

        arr = _suite_chunk_worker((0, (), None, "edf"))
        assert arr.shape == (0, 6, 16)
        assert arr.dtype == np.float64

    def test_existing_annotation_not_overwritten(self):
        """_identify_failure must respect worker-side attribution."""
        from repro.exec.pool import _identify_failure

        exc = RuntimeError("x")
        exc.instance_index = 41
        exc.instance_repr = "fine-grained"
        _identify_failure(exc, 7, "chunk-level item")
        assert exc.instance_index == 41
        assert exc.instance_repr == "fine-grained"
