"""Tests for the experiment harness (each paper artifact regenerates)."""

import pytest

from repro.experiments import (
    fig02_power_curves,
    fig03_breakeven,
    fig04_07_example,
    fig06_energy_vs_n,
    fig10_11_relative_energy,
    fig12_13_parallelism,
    headline,
    table2_benchmarks,
    table3_mpeg,
)
from repro.experiments.registry import COARSE, FINE, benchmark_suite
from repro.experiments.reporting import Report


class TestFig2:
    def test_report_structure(self):
        rep = fig02_power_curves.run(samples=11)
        assert isinstance(rep, Report)
        assert rep.experiment == "fig2"
        assert "critical" in rep.text

    def test_paper_anchors(self):
        d = fig02_power_curves.run(samples=11).data
        assert d["fmax_hz"] == pytest.approx(3.1e9, rel=0.01)
        assert d["f_crit_continuous_norm"] == pytest.approx(0.38, abs=0.01)
        assert d["f_crit_discrete_norm"] == pytest.approx(0.41, abs=0.01)
        assert d["f_crit_discrete_vdd"] == pytest.approx(0.7)


class TestFig3:
    def test_breakeven_anchor(self):
        d = fig03_breakeven.run(samples=8).data
        assert d["breakeven_half_speed_cycles"] == pytest.approx(
            1.7e6, rel=0.02)

    def test_curve_lengths_match(self):
        d = fig03_breakeven.run(samples=8).data
        assert len(d["f_norm"]) == len(d["breakeven_cycles"]) == 8


class TestFig4:
    def test_lamps_uses_fewer_processors(self):
        d = fig04_07_example.run().data
        assert d["processors"]["LAMPS"] < d["processors"]["S&S"]

    def test_energy_ordering(self):
        d = fig04_07_example.run().data
        e = d["energies"]
        assert e["LAMPS+PS"] <= e["LAMPS"] + 1e-12
        assert e["LIMIT-MF"] <= e["LIMIT-SF"] + 1e-12

    def test_gantt_rendered(self):
        assert "P0:" in fig04_07_example.run().text


class TestFig6:
    def test_applications_plus_demo(self):
        rep = fig06_energy_vs_n.run(max_processors=16)
        assert set(rep.data) == {"fpppp", "robot", "sparse",
                                 "rand60-demo"}

    def test_demo_graph_has_local_minima(self):
        # The paper's reason for LAMPS's linear phase-2 search.
        rep = fig06_energy_vs_n.run(max_processors=16)
        assert rep.data["rand60-demo"]["local_minima_at"]

    def test_curve_has_feasible_region(self):
        # sparse (parallelism ~16) needs 13+ processors at 2x CPL.
        rep = fig06_energy_vs_n.run(max_processors=16)
        for info in rep.data.values():
            assert any(e is not None for e in info["energies"])

    def test_local_minima_helper(self):
        assert fig06_energy_vs_n.local_minima([3, 1, 2, 1.5, 2.5]) == [3]
        assert fig06_energy_vs_n.local_minima([None, 2, 1, 2]) == []
        assert fig06_energy_vs_n.local_minima([]) == []


class TestFig10And11:
    @pytest.fixture(scope="class")
    def coarse_report(self):
        return fig10_11_relative_energy.run(
            scenario=COARSE, graphs_per_group=2, sizes=(50,),
            deadline_factors=(2.0,))

    def test_experiment_id(self, coarse_report):
        assert coarse_report.experiment == "fig10"

    def test_fine_gets_fig11(self):
        rep = fig10_11_relative_energy.run(
            scenario=FINE, graphs_per_group=1, sizes=(50,),
            deadline_factors=(2.0,))
        assert rep.experiment == "fig11"

    def test_sns_is_baseline_100(self, coarse_report):
        for bench in coarse_report.data["factor_2.0"].values():
            assert bench["S&S"] == pytest.approx(1.0)

    def test_lamps_ps_beats_sns(self, coarse_report):
        for bench in coarse_report.data["factor_2.0"].values():
            assert bench["LAMPS+PS"] <= 1.0 + 1e-9

    def test_limit_sf_below_heuristics(self, coarse_report):
        for bench in coarse_report.data["factor_2.0"].values():
            assert bench["LIMIT-SF"] <= bench["LAMPS+PS"] * (1 + 1e-9)


class TestFig12And13:
    def test_points_cover_parallelism_range(self):
        rep = fig12_13_parallelism.run(
            scenario=COARSE, node_counts=(200,), graphs_per_size=6)
        pars = [p["parallelism"] for p in rep.data["points"]]
        assert len(pars) == 6 and min(pars) >= 1.0

    def test_sns_worst_at_low_parallelism(self):
        rep = fig12_13_parallelism.run(
            scenario=COARSE, node_counts=(200,), graphs_per_size=8)
        low = [p for p in rep.data["points"] if p["parallelism"] < 3]
        for p in low:
            assert p["S&S"] >= p["LAMPS"] - 1e-15


class TestTable2:
    def test_contains_all_benchmarks(self):
        rep = table2_benchmarks.run(graphs_per_group=2, sizes=(50, 100))
        assert {"50", "100", "fpppp", "robot", "sparse"} <= set(rep.data)

    def test_applications_match_paper_exactly(self):
        rep = table2_benchmarks.run(graphs_per_group=1, sizes=())
        assert rep.data["fpppp"]["nodes"] == 334
        assert rep.data["fpppp"]["edges"] == 1196
        assert rep.data["robot"]["critical_path"] == 545
        assert rep.data["sparse"]["total_work"] == 1920


class TestTable3:
    @pytest.fixture(scope="class")
    def report(self):
        return table3_mpeg.run()

    def test_processor_counts_match_paper(self, report):
        assert report.data["LAMPS"]["processors"] == 3
        assert report.data["LAMPS+PS"]["processors"] == 6

    def test_relative_energies_close_to_paper(self, report):
        for approach in ("LAMPS", "S&S+PS", "LAMPS+PS", "LIMIT-SF"):
            ours = report.data[approach]["relative"]
            paper = report.data[approach]["paper_relative"]
            assert ours == pytest.approx(paper, abs=0.05), approach

    def test_ps_variants_near_limit(self, report):
        assert report.data["LAMPS+PS"]["energy"] <= \
            report.data["LIMIT-SF"]["energy"] * 1.01


class TestHeadline:
    def test_structure(self):
        rep = headline.run(graphs_per_group=1, sizes=(50,))
        assert "coarse" in rep.data and "fine" in rep.data
        for claims in rep.data.values():
            for c in claims.values():
                assert 0.0 <= c["max_saving_vs_sns"] <= 1.0


class TestRegistry:
    def test_suite_keys(self):
        suite = benchmark_suite(graphs_per_group=1, sizes=(50, 100))
        assert set(suite) == {"50", "100", "fpppp", "robot", "sparse"}

    def test_without_applications(self):
        suite = benchmark_suite(graphs_per_group=1, sizes=(50,),
                                include_applications=False)
        assert set(suite) == {"50"}

    def test_scenario_scales(self):
        suite = benchmark_suite(graphs_per_group=1, sizes=(50,))
        g = suite["50"][0]
        assert COARSE.apply(g).weight(g.node_ids[0]) == \
            pytest.approx(g.weight(g.node_ids[0]) * 3.1e6)
        assert FINE.cycles_per_unit == pytest.approx(3.1e4)

    def test_invalid_group_size_raises(self):
        with pytest.raises(ValueError):
            benchmark_suite(graphs_per_group=0)


class TestMainEntry:
    def test_cli_runs_subset(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["fig2", "fig3"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out and "Fig. 3" in out

    def test_cli_rejects_unknown(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["nosuch"])

    def test_cli_writes_file(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        out = tmp_path / "report.txt"
        assert main(["fig2", "--out", str(out)]) == 0
        assert "Fig. 2" in out.read_text()


class TestJsonDir:
    def test_cli_writes_json(self, tmp_path, capsys):
        import json

        from repro.experiments.__main__ import main

        out = tmp_path / "json"
        assert main(["fig2", "--json-dir", str(out)]) == 0
        data = json.loads((out / "fig2.json").read_text())
        assert data["experiment"] == "fig2"


class TestScorecard:
    @pytest.fixture(scope="class")
    def report(self):
        from repro.experiments import scorecard

        return scorecard.run()

    def test_all_checks_pass(self, report):
        assert report.data["failed"] == []
        assert report.data["passed"] == report.data["total"]

    def test_covers_all_anchor_families(self, report):
        text = report.text
        for needle in ("max frequency", "critical point", "breakeven",
                       "Table 2", "Table 3", "attainment"):
            assert needle in text
