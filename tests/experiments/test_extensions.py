"""Tests for the extension experiments (multifreq, ABB)."""

import pytest

from repro.experiments import ext_abb, ext_multifreq


class TestExtMultifreq:
    @pytest.fixture(scope="class")
    def report(self):
        return ext_multifreq.run(sizes=(50,), graphs_per_group=3,
                                 deadline_factors=(1.5,))

    def test_structure(self, report):
        assert report.experiment == "ext-multifreq"
        assert "realised" in report.text

    def test_gains_bounded(self, report):
        assert 0.0 <= report.data["mean_gain"] <= 1.0
        assert report.data["max_gain"] >= report.data["mean_gain"]

    def test_papers_conjecture_holds(self, report):
        # "The actual benefit ... will probably be much less" — the
        # realised fraction of the LIMIT-MF headroom stays small.
        frac = report.data["mean_realised_fraction"]
        assert frac is not None and frac < 0.5


class TestExtAbb:
    @pytest.fixture(scope="class")
    def report(self):
        return ext_abb.run(sizes=(50,), graphs_per_group=3,
                           deadline_factors=(1.5, 4.0))

    def test_structure(self, report):
        assert report.experiment == "ext-abb"
        assert "Vbs" in report.text

    def test_abb_saves_energy(self, report):
        means = report.data["mean_savings"]
        for factor, saving in means.items():
            assert saving > 0.05, factor  # ABB is a real lever here

    def test_looser_deadline_saves_more(self, report):
        means = report.data["mean_savings"]
        assert means[4.0] >= means[1.5]

    def test_abb_fmax_lower_than_fixed(self, report):
        # The energy-optimal full-supply bias trades peak speed.
        assert report.data["abb_fmax"] < report.data["fixed_fmax"]


class TestExtRuntime:
    @pytest.fixture(scope="class")
    def report(self):
        from repro.experiments import ext_runtime

        return ext_runtime.run(sizes=(50,), graphs_per_group=3)

    def test_structure(self, report):
        assert report.experiment == "ext-runtime"
        assert "reclamation" in report.title

    def test_reclamation_ordering(self, report):
        m = report.data["mean_ratios"]
        assert m["leakage-aware"] <= m["greedy"] + 1e-9
        assert m["greedy"] <= m["none"] + 1e-9
        assert m["none"] < 1.0

    def test_no_deadline_misses(self, report):
        assert report.data["deadline_misses"] == 0


class TestExtComm:
    @pytest.fixture(scope="class")
    def report(self):
        from repro.experiments import ext_comm

        return ext_comm.run(sizes=(50,), graphs_per_group=3,
                            ccrs=(0.0, 2.0))

    def test_structure(self, report):
        assert report.experiment == "ext-comm"
        assert "CCR" in report.text

    def test_energy_monotone_in_ccr(self, report):
        e = report.data["mean_energy"]
        assert e[2.0] >= e[0.0] - 1e-12

    def test_processors_never_increase(self, report):
        n = report.data["mean_processors"]
        assert n[2.0] <= n[0.0] + 1e-9


class TestExtTechnology:
    @pytest.fixture(scope="class")
    def report(self):
        from repro.experiments import ext_technology

        return ext_technology.run(sizes=(50,), graphs_per_group=3,
                                  leakage_scales=(0.1, 1.0, 10.0))

    def test_savings_grow_with_leakage(self, report):
        s = report.data["savings"]
        assert s[0.1] < s[1.0] < s[10.0]

    def test_static_fraction_grows(self, report):
        f = report.data["static_fraction"]
        assert f[0.1] < f[1.0] < f[10.0]
        assert 0.0 < f[0.1] and f[10.0] < 1.0


class TestReportSerialization:
    def test_to_json_roundtrips(self):
        import json

        from repro.experiments import fig02_power_curves

        rep = fig02_power_curves.run(samples=5)
        data = json.loads(rep.to_json())
        assert data["experiment"] == "fig2"
        assert data["data"]["f_crit_discrete_vdd"] == pytest.approx(0.7)

    def test_save_json(self, tmp_path):
        import json

        from repro.experiments import fig03_breakeven

        rep = fig03_breakeven.run(samples=5)
        path = tmp_path / "fig3.json"
        rep.save_json(path)
        assert json.loads(path.read_text())["experiment"] == "fig3"

    def test_numpy_values_serializable(self):
        import json
        import numpy as np

        from repro.experiments.reporting import Report

        rep = Report("x", "t", "body",
                     {"a": np.float64(1.5), "b": [np.int64(2)],
                      "c": {"nested": np.bool_(True)}})
        data = json.loads(rep.to_json())
        assert data["data"] == {"a": 1.5, "b": [2], "c": {"nested": True}}


class TestExtHetero:
    @pytest.fixture(scope="class")
    def report(self):
        from repro.experiments import ext_hetero

        return ext_hetero.run(sizes=(50,), graphs_per_group=2,
                              deadline_factors=(1.5, 8.0))

    def test_structure(self, report):
        assert report.experiment == "ext-hetero"
        assert "little" in report.text

    def test_loose_deadline_saves_more(self, report):
        s = report.data["savings"]
        assert s[8.0] >= s[1.5] - 1e-9

    def test_little_share_grows(self, report):
        sh = report.data["little_share"]
        assert sh[8.0] >= sh[1.5] - 1e-9
        assert 0.0 <= sh[1.5] <= 1.0


class TestExtMultifreqIslands:
    def test_island_gain_between_single_and_independent(self):
        from repro.experiments import ext_multifreq

        rep = ext_multifreq.run(sizes=(50,), graphs_per_group=3,
                                deadline_factors=(1.5,))
        # Two islands is a restriction of per-processor rails: its
        # mean gain cannot exceed the independent case's, and cannot
        # be negative (it contains the single-frequency base).
        assert -1e-9 <= rep.data["mean_island_gain"] \
            <= rep.data["mean_gain"] + 1e-9
