"""Tests for graph analysis (CPL, work, parallelism, levels)."""

import numpy as np
import pytest

from repro.graphs.analysis import (
    alap_times,
    asap_times,
    average_parallelism,
    bottom_levels,
    critical_path,
    critical_path_length,
    graph_stats,
    top_levels,
    total_work,
)
from repro.graphs.generators import chain, fork_join, independent_tasks


class TestCriticalPath:
    def test_chain_cpl_is_total_weight(self):
        g = chain(5, weights=[1, 2, 3, 4, 5])
        assert critical_path_length(g) == 15.0

    def test_independent_cpl_is_max_weight(self):
        g = independent_tasks(4, weights=[1, 7, 3, 2])
        assert critical_path_length(g) == 7.0

    def test_diamond(self, diamond):
        # a(1) -> c(3) -> d(1) is the longest path.
        assert critical_path_length(diamond) == 5.0

    def test_critical_path_nodes(self, diamond):
        assert critical_path(diamond) == ("a", "c", "d")

    def test_critical_path_is_a_path(self, fig4_graph):
        path = critical_path(fig4_graph)
        for u, v in zip(path, path[1:]):
            assert v in fig4_graph.successors(u)

    def test_critical_path_length_matches_path_weights(self, fig4_graph):
        path = critical_path(fig4_graph)
        assert sum(fig4_graph.weight(v) for v in path) == pytest.approx(
            critical_path_length(fig4_graph))

    def test_fig4_cpl(self, fig4_graph):
        # T1(2) -> T2(6) -> T5(2) = 10.
        assert critical_path_length(fig4_graph) == 10.0


class TestLevels:
    def test_top_levels_chain(self):
        g = chain(3, weights=[2, 3, 4])
        assert list(top_levels(g)) == [2, 5, 9]

    def test_bottom_levels_chain(self):
        g = chain(3, weights=[2, 3, 4])
        assert list(bottom_levels(g)) == [9, 7, 4]

    def test_top_plus_bottom_on_critical_path(self, diamond):
        tl, bl = top_levels(diamond), bottom_levels(diamond)
        cpl = critical_path_length(diamond)
        w = diamond.weights_array
        # tl + bl - w == cpl exactly on critical nodes, <= elsewhere.
        assert np.all(tl + bl - w <= cpl + 1e-9)
        crit = [diamond.index_of(v) for v in critical_path(diamond)]
        for i in crit:
            assert tl[i] + bl[i] - w[i] == pytest.approx(cpl)

    def test_asap_is_top_level_minus_weight(self, diamond):
        assert np.allclose(asap_times(diamond),
                           top_levels(diamond) - diamond.weights_array)


class TestAlap:
    def test_chain_alap(self):
        g = chain(3, weights=[2, 3, 4])
        d = alap_times(g, 20.0)
        # Latest starts: node0 at 11, node1 at 13, node2 at 16.
        assert list(d) == [11, 13, 16]

    def test_deadline_below_cpl_raises(self, diamond):
        with pytest.raises(ValueError, match="critical path"):
            alap_times(diamond, 4.0)

    def test_deadline_equal_cpl_ok(self, diamond):
        d = alap_times(diamond, 5.0)
        # On the critical path the latest start equals the earliest one.
        assert d[diamond.index_of("a")] == pytest.approx(0.0)


class TestWorkAndParallelism:
    def test_total_work(self, diamond):
        assert total_work(diamond) == 7.0

    def test_chain_parallelism_is_one(self):
        assert average_parallelism(chain(10)) == pytest.approx(1.0)

    def test_independent_parallelism_is_n(self):
        assert average_parallelism(independent_tasks(8)) == pytest.approx(8.0)

    def test_fork_join_parallelism_between_1_and_width(self):
        g = fork_join(6, 3)
        p = average_parallelism(g)
        assert 1.0 < p < 6.0

    def test_parallelism_at_least_one(self, fig4_graph):
        assert average_parallelism(fig4_graph) >= 1.0


class TestGraphStats:
    def test_fields(self, diamond):
        s = graph_stats(diamond)
        assert s.name == "diamond"
        assert s.n == 4 and s.m == 4
        assert s.cpl == 5.0 and s.work == 7.0
        assert s.parallelism == pytest.approx(1.4)

    def test_as_dict(self, diamond):
        d = graph_stats(diamond).as_dict()
        assert d["nodes"] == 4
        assert d["parallelism"] == pytest.approx(1.4)

    def test_scaling_invariance_of_parallelism(self, diamond):
        assert graph_stats(diamond.scaled(1e6)).parallelism == \
            pytest.approx(graph_stats(diamond).parallelism)
