"""Tests for the exact-statistics application graph synthesis."""

import pytest

from repro.graphs.analysis import (
    critical_path_length,
    total_work,
)
from repro.graphs.applications import (
    APPLICATION_STATS,
    application_graph,
    application_suite,
    synthesize_with_stats,
)


class TestApplicationGraphs:
    @pytest.mark.parametrize("name", sorted(APPLICATION_STATS))
    def test_exact_table2_stats(self, name):
        n, m, cpl, work = APPLICATION_STATS[name]
        g = application_graph(name)
        assert g.n == n
        assert g.m == m
        assert critical_path_length(g) == pytest.approx(cpl)
        assert total_work(g) == pytest.approx(work)

    @pytest.mark.parametrize("name", sorted(APPLICATION_STATS))
    def test_acyclic_and_weights_in_range(self, name):
        g = application_graph(name)
        g.topological_order()
        assert g.weights_array.min() >= 1
        assert g.weights_array.max() <= 300

    def test_deterministic(self):
        a = application_graph("robot")
        b = application_graph("robot")
        assert set(a.edges()) == set(b.edges())

    def test_different_seed_different_graph(self):
        a = application_graph("robot", seed=1)
        b = application_graph("robot", seed=2)
        assert set(a.edges()) != set(b.edges())

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown application"):
            application_graph("gcc")

    def test_suite_contains_all(self):
        suite = application_suite()
        assert set(suite) == set(APPLICATION_STATS)

    def test_not_all_parallel_at_t0(self):
        # The synthesis must not dump every extra node at the sources
        # (that shape distorts the S&S baseline; see module docstring).
        g = application_graph("fpppp")
        assert len(g.sources()) < g.n / 3


class TestSynthesizeWithStats:
    def test_small_feasible_case(self):
        g = synthesize_with_stats("t", 10, 12, 20, 50, seed=1)
        assert g.n == 10 and g.m == 12
        assert critical_path_length(g) == 20
        assert total_work(g) == 50

    def test_chain_like(self):
        g = synthesize_with_stats("c", 5, 4, 25, 25, seed=3)
        assert critical_path_length(g) == 25

    def test_work_above_capacity_raises(self):
        with pytest.raises(ValueError, match="infeasible"):
            synthesize_with_stats("x", 2, 1, 10, 10_000)

    def test_work_below_node_count_raises(self):
        with pytest.raises(ValueError, match="infeasible"):
            synthesize_with_stats("x", 10, 5, 3, 5)

    def test_cpl_above_work_raises(self):
        with pytest.raises(ValueError):
            synthesize_with_stats("x", 10, 5, 100, 50)

    def test_too_many_edges_raises(self):
        # 4 nodes can carry at most 6 edges.
        with pytest.raises(ValueError):
            synthesize_with_stats("x", 4, 10, 10, 20)

    def test_custom_wmax(self):
        g = synthesize_with_stats("w", 6, 5, 40, 60, seed=2, wmax=50)
        assert g.weights_array.max() <= 50
