"""Tests for the TaskGraph DAG structure."""

import pytest

from repro.graphs.dag import CycleError, TaskGraph


class TestConstruction:
    def test_basic(self, diamond):
        assert diamond.n == 4
        assert diamond.m == 4
        assert diamond.name == "diamond"

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one task"):
            TaskGraph({}, [])

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            TaskGraph({"a": -1.0}, [])

    def test_nan_weight_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            TaskGraph({"a": float("nan")}, [])

    def test_zero_weight_allowed(self):
        g = TaskGraph({"a": 0.0, "b": 1.0}, [("a", "b")])
        assert g.weight("a") == 0.0

    def test_unknown_edge_endpoint_rejected(self):
        with pytest.raises(KeyError):
            TaskGraph({"a": 1.0}, [("a", "zzz")])

    def test_self_loop_rejected(self):
        with pytest.raises(CycleError, match="self-loop"):
            TaskGraph({"a": 1.0}, [("a", "a")])

    def test_cycle_rejected(self):
        with pytest.raises(CycleError, match="cycle"):
            TaskGraph({"a": 1.0, "b": 1.0}, [("a", "b"), ("b", "a")])

    def test_longer_cycle_rejected(self):
        with pytest.raises(CycleError):
            TaskGraph({i: 1.0 for i in range(3)},
                      [(0, 1), (1, 2), (2, 0)])

    def test_duplicate_edges_collapsed(self):
        g = TaskGraph({"a": 1.0, "b": 1.0},
                      [("a", "b"), ("a", "b"), ("a", "b")])
        assert g.m == 1

    def test_int_node_ids(self):
        g = TaskGraph({1: 2.0, 2: 3.0}, [(1, 2)])
        assert g.weight(1) == 2.0

    def test_single_node_no_edges(self):
        g = TaskGraph({"solo": 5.0})
        assert g.n == 1 and g.m == 0
        assert g.sources() == g.sinks() == ("solo",)


class TestQueries:
    def test_weight(self, diamond):
        assert diamond.weight("c") == 3.0

    def test_successors(self, diamond):
        assert set(diamond.successors("a")) == {"b", "c"}
        assert diamond.successors("d") == ()

    def test_predecessors(self, diamond):
        assert set(diamond.predecessors("d")) == {"b", "c"}
        assert diamond.predecessors("a") == ()

    def test_contains(self, diamond):
        assert "a" in diamond
        assert "zzz" not in diamond

    def test_len(self, diamond):
        assert len(diamond) == 4

    def test_edges_iteration(self, diamond):
        edges = set(diamond.edges())
        assert edges == {("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")}

    def test_sources_and_sinks(self, diamond):
        assert diamond.sources() == ("a",)
        assert diamond.sinks() == ("d",)

    def test_index_roundtrip(self, diamond):
        for v in diamond.node_ids:
            assert diamond.id_of(diamond.index_of(v)) == v

    def test_weights_array_matches(self, diamond):
        w = diamond.weights_array
        for v in diamond.node_ids:
            assert w[diamond.index_of(v)] == diamond.weight(v)

    def test_weights_array_readonly(self, diamond):
        with pytest.raises(ValueError):
            diamond.weights_array[0] = 99.0


class TestTopologicalOrder:
    def test_respects_edges(self, diamond):
        order = diamond.topological_order()
        pos = {v: i for i, v in enumerate(order)}
        for u, v in diamond.edges():
            assert pos[u] < pos[v]

    def test_covers_all_nodes(self, diamond):
        assert set(diamond.topological_order()) == set(diamond.node_ids)

    def test_deterministic(self, diamond):
        g2 = TaskGraph({v: diamond.weight(v) for v in diamond.node_ids},
                       diamond.edges())
        assert diamond.topological_order() == g2.topological_order()

    def test_topo_indices_consistent(self, diamond):
        ids = tuple(diamond.id_of(i) for i in diamond.topo_indices)
        assert ids == diamond.topological_order()


class TestTransformations:
    def test_scaled_multiplies_weights(self, diamond):
        g2 = diamond.scaled(10.0)
        assert g2.weight("c") == 30.0
        assert diamond.weight("c") == 3.0  # original untouched

    def test_scaled_preserves_structure(self, diamond):
        g2 = diamond.scaled(2.0)
        assert set(g2.edges()) == set(diamond.edges())
        assert g2.name == diamond.name

    def test_scaled_rename(self, diamond):
        assert diamond.scaled(2.0, name="x2").name == "x2"

    def test_scaled_zero_rejected(self, diamond):
        with pytest.raises(ValueError, match="positive"):
            diamond.scaled(0.0)

    def test_relabeled(self, diamond):
        mapping = {v: v.upper() for v in diamond.node_ids}
        g2 = diamond.relabeled(mapping)
        assert g2.weight("C") == 3.0
        assert ("A", "B") in set(g2.edges())

    def test_relabeled_missing_key_raises(self, diamond):
        with pytest.raises(KeyError):
            diamond.relabeled({"a": "A"})


class TestNetworkxInterop:
    def test_roundtrip(self, diamond):
        g2 = TaskGraph.from_networkx(diamond.to_networkx())
        assert set(g2.node_ids) == set(diamond.node_ids)
        assert set(g2.edges()) == set(diamond.edges())
        assert g2.weight("c") == diamond.weight("c")

    def test_default_weight_is_one(self):
        import networkx as nx

        g = nx.DiGraph()
        g.add_edge("x", "y")
        tg = TaskGraph.from_networkx(g)
        assert tg.weight("x") == 1.0

    def test_cycle_via_networkx_rejected(self):
        import networkx as nx

        g = nx.DiGraph([("x", "y"), ("y", "x")])
        with pytest.raises(CycleError):
            TaskGraph.from_networkx(g)

    def test_to_networkx_weights(self, diamond):
        nxg = diamond.to_networkx()
        assert nxg.nodes["b"]["weight"] == 2.0
