"""Tests for the bundled STG dataset."""

import pytest

from repro.graphs.analysis import critical_path_length, total_work
from repro.graphs.applications import APPLICATION_STATS
from repro.graphs.datasets import bundled_names, load_all_bundled, \
    load_bundled
from repro.graphs.mpeg import mpeg1_gop_graph


class TestBundledDataset:
    def test_names_listed(self):
        names = bundled_names()
        assert "mpeg1" in names
        assert {"fpppp", "robot", "sparse"} <= set(names)
        assert any(n.startswith("rand50") for n in names)

    def test_unknown_name_lists_options(self):
        with pytest.raises(FileNotFoundError, match="available"):
            load_bundled("nope")

    @pytest.mark.parametrize("name", sorted(APPLICATION_STATS))
    def test_application_files_match_table2(self, name):
        n, m, cpl, work = APPLICATION_STATS[name]
        g = load_bundled(name)
        assert g.n == n and g.m == m
        assert critical_path_length(g) == cpl
        assert total_work(g) == work

    def test_mpeg_file_matches_builder(self):
        bundled = load_bundled("mpeg1")
        built = mpeg1_gop_graph()
        assert bundled.n == built.n
        assert total_work(bundled) == total_work(built)
        assert critical_path_length(bundled) == \
            critical_path_length(built)

    def test_keep_dummies(self):
        with_d = load_bundled("robot", keep_dummies=True)
        without = load_bundled("robot")
        assert with_d.n == without.n + 2

    def test_load_all(self):
        graphs = load_all_bundled()
        assert set(graphs) == set(bundled_names())
        for g in graphs.values():
            g.topological_order()

    def test_bundled_graphs_schedule(self):
        from repro.core import schedule

        g = load_bundled("rand50_001").scaled(3.1e6)
        r = schedule(g, deadline_factor=2.0, heuristic="LAMPS")
        assert r.total_energy > 0
