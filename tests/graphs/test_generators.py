"""Tests for the random task-graph generators."""

import numpy as np
import pytest

from repro.graphs.analysis import (
    average_parallelism,
    critical_path_length,
    graph_stats,
    total_work,
)
from repro.graphs.generators import (
    chain,
    fork_join,
    independent_tasks,
    layered_dag,
    parallel_chains,
    parallelism_sweep,
    sameprob_dag,
    stg_group,
    stg_random_graph,
)


class TestChain:
    def test_structure(self):
        g = chain(4)
        assert g.m == 3
        assert g.successors(0) == (1,)
        assert g.sinks() == (3,)

    def test_custom_weights(self):
        g = chain(3, weights=[5, 6, 7])
        assert total_work(g) == 18

    def test_wrong_weight_count_raises(self):
        with pytest.raises(ValueError, match="length"):
            chain(3, weights=[1, 2])

    def test_zero_length_raises(self):
        with pytest.raises(ValueError):
            chain(0)

    def test_single_node(self):
        g = chain(1)
        assert g.n == 1 and g.m == 0


class TestIndependent:
    def test_no_edges(self):
        assert independent_tasks(5).m == 0

    def test_parallelism(self):
        assert average_parallelism(independent_tasks(5)) == 5.0


class TestForkJoin:
    def test_node_count(self):
        g = fork_join(4, 3)
        assert g.n == 3 * 4 + 3 + 1

    def test_stage_depends_on_previous_join(self):
        g = fork_join(2, 2)
        assert set(g.predecessors("s1_0")) == {"j0"}
        assert set(g.predecessors("j1")) == {"s1_0", "s1_1"}

    def test_invalid_dims_raise(self):
        with pytest.raises(ValueError):
            fork_join(0, 1)


class TestLayered:
    def test_every_noninitial_node_has_predecessor(self):
        g = layered_dag(30, 5, 3)
        sources = set(g.sources())
        # Only first-layer nodes may be sources: exactly ceil(30/5) = 6.
        assert len(sources) == 6

    def test_depth_equals_layers(self):
        g = layered_dag(20, 4, 1, edge_prob=1.0, mean_weight=5.0)
        # With all weights equal and full wiring, CPL spans 4 layers.
        tl_depth = 0
        from repro.graphs.analysis import critical_path

        assert len(critical_path(g)) == 4

    def test_layers_out_of_range_raises(self):
        with pytest.raises(ValueError):
            layered_dag(5, 6, 0)

    def test_deterministic_for_seed(self):
        a = layered_dag(25, 5, 42)
        b = layered_dag(25, 5, 42)
        assert set(a.edges()) == set(b.edges())
        assert np.array_equal(a.weights_array, b.weights_array)


class TestSameprob:
    def test_probability_zero_gives_no_edges(self):
        assert sameprob_dag(20, 0.0, 1).m == 0

    def test_probability_one_gives_complete_dag(self):
        g = sameprob_dag(10, 1.0, 1)
        assert g.m == 10 * 9 // 2

    def test_acyclic_by_construction(self):
        g = sameprob_dag(50, 0.3, 5)
        g.topological_order()  # raises on a cycle

    def test_bad_probability_raises(self):
        with pytest.raises(ValueError):
            sameprob_dag(10, 1.5, 0)

    def test_weights_in_stg_range(self):
        g = sameprob_dag(100, 0.1, 3)
        assert g.weights_array.min() >= 1
        assert g.weights_array.max() <= 300


class TestStgRandom:
    def test_requested_size(self):
        assert stg_random_graph(77, 0).n == 77

    def test_deterministic(self):
        a, b = stg_random_graph(40, 9), stg_random_graph(40, 9)
        assert set(a.edges()) == set(b.edges())

    def test_different_seeds_differ(self):
        a, b = stg_random_graph(40, 1), stg_random_graph(40, 2)
        assert set(a.edges()) != set(b.edges()) or \
            not np.array_equal(a.weights_array, b.weights_array)

    def test_stats_within_table2_ballpark(self):
        # Table 2 for n=50: work 204-644, CPL 24-447.  Averages over a
        # group must land inside a generous widening of those ranges.
        graphs = stg_group(50, 30, seed=4)
        works = [total_work(g) for g in graphs]
        cpls = [critical_path_length(g) for g in graphs]
        assert 150 < np.mean(works) < 800
        assert 20 < np.mean(cpls) < 500


class TestStgGroup:
    def test_group_size(self):
        assert len(stg_group(50, 7, seed=1)) == 7

    def test_group_members_distinct(self):
        graphs = stg_group(50, 5, seed=1)
        edge_sets = [frozenset(g.edges()) for g in graphs]
        assert len(set(edge_sets)) > 1

    def test_group_deterministic(self):
        a = stg_group(100, 3, seed=9)
        b = stg_group(100, 3, seed=9)
        for ga, gb in zip(a, b):
            assert set(ga.edges()) == set(gb.edges())

    def test_group_names(self):
        graphs = stg_group(50, 2, seed=0)
        assert graphs[0].name == "rand50_000"

    def test_invalid_count_raises(self):
        with pytest.raises(ValueError):
            stg_group(50, 0)


class TestParallelChains:
    def test_parallelism_close_to_chain_count(self):
        g = parallel_chains(8, 50, 3, cross_prob=0.0, mean_weight=10.0)
        assert average_parallelism(g) == pytest.approx(8.0, rel=0.35)

    def test_single_chain_parallelism_one(self):
        g = parallel_chains(1, 30, 0, cross_prob=0.0)
        assert average_parallelism(g) == pytest.approx(1.0)

    def test_cross_edges_keep_acyclicity(self):
        g = parallel_chains(5, 20, 2, cross_prob=0.5)
        g.topological_order()

    def test_node_count(self):
        assert parallel_chains(4, 25, 0).n == 100

    def test_invalid_dims_raise(self):
        with pytest.raises(ValueError):
            parallel_chains(0, 5)


class TestParallelismSweep:
    def test_count_and_size(self):
        graphs = parallelism_sweep(n_nodes=200, graphs=6, seed=1)
        assert len(graphs) == 6
        for g in graphs:
            assert g.n == 200

    def test_spans_a_range_of_parallelism(self):
        graphs = parallelism_sweep(n_nodes=300, max_parallelism=30,
                                   graphs=25, seed=7)
        pars = [average_parallelism(g) for g in graphs]
        assert min(pars) < 4
        assert max(pars) > 8

    def test_deterministic(self):
        a = parallelism_sweep(n_nodes=100, graphs=3, seed=5)
        b = parallelism_sweep(n_nodes=100, graphs=3, seed=5)
        for ga, gb in zip(a, b):
            assert set(ga.edges()) == set(gb.edges())


class TestSamepred:
    def test_mean_in_degree(self):
        from repro.graphs.generators import samepred_dag

        g = samepred_dag(400, 2.0, 3)
        assert 1.0 < g.m / g.n < 3.0

    def test_zero_preds_gives_no_edges(self):
        from repro.graphs.generators import samepred_dag

        assert samepred_dag(50, 0.0, 0).m == 0

    def test_acyclic(self):
        from repro.graphs.generators import samepred_dag

        samepred_dag(80, 3.0, 1).topological_order()

    def test_negative_mean_rejected(self):
        from repro.graphs.generators import samepred_dag

        with pytest.raises(ValueError):
            samepred_dag(10, -1.0, 0)

    def test_deterministic(self):
        from repro.graphs.generators import samepred_dag

        a, b = samepred_dag(60, 2.0, 5), samepred_dag(60, 2.0, 5)
        assert set(a.edges()) == set(b.edges())


class TestLayrpred:
    def test_every_noninitial_node_has_predecessor(self):
        from repro.graphs.generators import layrpred_dag

        g = layrpred_dag(40, 8, 1.5, 2)
        assert len(g.sources()) == 5  # exactly the first layer

    def test_edges_connect_adjacent_layers_only(self):
        from repro.graphs.generators import layrpred_dag
        from repro.graphs.analysis import critical_path

        g = layrpred_dag(30, 6, 2.0, 1, mean_weight=5.0)
        # Depth in nodes equals the layer count for equal weights.
        assert len(critical_path(g)) == 6

    def test_bad_layer_count_rejected(self):
        from repro.graphs.generators import layrpred_dag

        with pytest.raises(ValueError):
            layrpred_dag(5, 9, 1.0, 0)

    def test_deterministic(self):
        from repro.graphs.generators import layrpred_dag

        a = layrpred_dag(40, 5, 2.0, 9)
        b = layrpred_dag(40, 5, 2.0, 9)
        assert set(a.edges()) == set(b.edges())
