"""Tests for the Kahn Process Network model and its DAG unrolling."""

import pytest

from repro.graphs.kpn import Channel, ProcessNetwork


@pytest.fixture
def fig1_network():
    """The paper's Fig. 1 KPN: T1 -> T2 <- T3, with T2 -> T3 delayed."""
    return ProcessNetwork(
        {"T1": 10.0, "T2": 20.0, "T3": 15.0},
        [Channel("T1", "T2"), Channel("T3", "T2"),
         Channel("T2", "T3", delay=1)])


class TestChannel:
    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="delay"):
            Channel("a", "b", delay=-1)

    def test_default_delay_zero(self):
        assert Channel("a", "b").delay == 0


class TestProcessNetwork:
    def test_unknown_channel_endpoint_rejected(self):
        with pytest.raises(KeyError):
            ProcessNetwork({"a": 1.0}, [Channel("a", "zzz")])

    def test_zero_delay_self_channel_rejected(self):
        with pytest.raises(ValueError, match="self-channel"):
            ProcessNetwork({"a": 1.0}, [Channel("a", "a")])

    def test_delayed_self_channel_allowed(self):
        net = ProcessNetwork({"a": 1.0}, [Channel("a", "a", delay=1)])
        assert len(net.channels) == 1

    def test_non_positive_weight_rejected(self):
        with pytest.raises(ValueError, match="positive weight"):
            ProcessNetwork({"a": 0.0}, [])

    def test_outputs_default_to_sinks(self, fig1_network):
        # T2 feeds T3 only through a delayed channel, so both T2 and T3
        # are zero-delay sinks... T2 -> T3 has delay 1, T2 has no
        # zero-delay outgoing channel: outputs = {T2, T3} minus sources
        # of zero-delay channels {T1, T3} -> {T2}.
        assert fig1_network.outputs == ("T2",)

    def test_explicit_outputs(self):
        net = ProcessNetwork({"a": 1.0, "b": 1.0}, [Channel("a", "b")],
                             outputs=["a", "b"])
        assert net.outputs == ("a", "b")

    def test_unknown_output_rejected(self):
        with pytest.raises(KeyError):
            ProcessNetwork({"a": 1.0}, [], outputs=["b"])

    def test_empty_network_rejected(self):
        with pytest.raises(ValueError):
            ProcessNetwork({}, [])


class TestUnroll:
    def test_node_count(self, fig1_network):
        u = fig1_network.unroll(4, period=100.0, first_deadline=200.0)
        assert u.graph.n == 12

    def test_intra_copy_edges(self, fig1_network):
        u = fig1_network.unroll(3, period=100.0, first_deadline=200.0)
        g = u.graph
        assert ("T2", 0) in [t for t in g.successors(("T1", 0))]

    def test_delayed_channel_crosses_copies(self, fig1_network):
        u = fig1_network.unroll(3, period=100.0, first_deadline=200.0)
        g = u.graph
        # T2 of copy i feeds T3 of copy i+1 (Fig. 1b).
        assert ("T3", 1) in g.successors(("T2", 0))
        # and not its own copy.
        assert ("T3", 0) not in g.successors(("T2", 0))

    def test_successive_copies_linked(self, fig1_network):
        u = fig1_network.unroll(2, period=100.0, first_deadline=200.0)
        g = u.graph
        for p in ("T1", "T2", "T3"):
            assert (p, 1) in g.successors((p, 0))

    def test_deadlines_spaced_by_period(self, fig1_network):
        u = fig1_network.unroll(3, period=100.0, first_deadline=200.0)
        assert u.deadlines[("T2", 0)] == 200.0
        assert u.deadlines[("T2", 1)] == 300.0
        assert u.deadlines[("T2", 2)] == 400.0

    def test_horizon_is_last_deadline(self, fig1_network):
        u = fig1_network.unroll(3, period=100.0, first_deadline=200.0)
        assert u.horizon == 400.0

    def test_graph_is_acyclic(self, fig1_network):
        u = fig1_network.unroll(5, period=50.0, first_deadline=100.0)
        u.graph.topological_order()

    def test_weights_copied_per_iteration(self, fig1_network):
        u = fig1_network.unroll(2, period=100.0, first_deadline=200.0)
        assert u.graph.weight(("T2", 0)) == 20.0
        assert u.graph.weight(("T2", 1)) == 20.0

    def test_invalid_args_raise(self, fig1_network):
        with pytest.raises(ValueError):
            fig1_network.unroll(0, period=1.0, first_deadline=1.0)
        with pytest.raises(ValueError):
            fig1_network.unroll(2, period=0.0, first_deadline=1.0)
        with pytest.raises(ValueError):
            fig1_network.unroll(2, period=1.0, first_deadline=-1.0)
