"""Tests for workload characterization metrics."""

import numpy as np
import pytest

from repro.graphs.generators import (
    chain,
    fork_join,
    independent_tasks,
    parallel_chains,
    stg_random_graph,
)
from repro.graphs.metrics import (
    max_width,
    profile,
    slack_distribution,
    width_profile,
    width_statistics,
)


class TestWidthProfile:
    def test_chain_is_flat_one(self):
        g = chain(6)
        times, widths = width_profile(g)
        assert set(widths.tolist()) == {1}

    def test_independent_tasks_peak_at_n(self):
        g = independent_tasks(7)
        assert max_width(g) == 7

    def test_fork_join_peaks_at_width(self):
        g = fork_join(5, 2, weight=3.0)
        assert max_width(g) == 5

    def test_profile_covers_cpl(self):
        from repro.graphs.analysis import critical_path_length

        g = stg_random_graph(40, 3)
        times, widths = width_profile(g)
        assert times[0] == 0.0
        assert times[-1] < critical_path_length(g)

    def test_diamond(self, diamond):
        # a alone, then b and c together, then d alone.
        assert max_width(diamond) == 2


class TestWidthStatistics:
    def test_average_equals_parallelism(self):
        from repro.graphs.analysis import average_parallelism

        for seed in range(4):
            g = stg_random_graph(30, seed)
            avg, peak = width_statistics(g)
            assert avg == pytest.approx(average_parallelism(g))
            assert peak >= avg - 1e-9

    def test_parallel_chains_not_bursty(self):
        g = parallel_chains(4, 20, 1, cross_prob=0.0, mean_weight=10.0)
        p = profile(g)
        assert p.burstiness < 1.6

    def test_bursty_shapes_detected(self):
        # A fork-join is burstier than parallel chains: its joins
        # serialise between wide stages.
        flat = profile(parallel_chains(5, 20, 1, cross_prob=0.0,
                                       mean_weight=10.0))
        bursty = profile(fork_join(5, 4, weight=10.0))
        assert bursty.burstiness > flat.burstiness


class TestMaxWidthPredictsSns:
    def test_sns_employs_max_width_processors(self):
        """The link to Fig. 12's over-provisioning: S&S's employed
        count is exactly the ASAP peak concurrency."""
        from repro.core import sns
        from repro.graphs.analysis import critical_path_length

        for seed in range(4):
            g = stg_random_graph(30, seed).scaled(3.1e6)
            r = sns(g, 2 * critical_path_length(g))
            assert r.n_processors == max_width(g)


class TestSlack:
    def test_zero_on_critical_path_at_cpl(self, diamond):
        from repro.graphs.analysis import critical_path, \
            critical_path_length

        slack = slack_distribution(diamond, critical_path_length(diamond))
        for v in critical_path(diamond):
            assert slack[diamond.index_of(v)] == pytest.approx(0.0)

    def test_grows_with_deadline(self, diamond):
        s1 = slack_distribution(diamond, 10.0)
        s2 = slack_distribution(diamond, 20.0)
        assert np.all(s2 >= s1)
        assert np.all(s2 - s1 == pytest.approx(10.0))

    def test_nonnegative(self):
        from repro.graphs.analysis import critical_path_length

        g = stg_random_graph(30, 5)
        slack = slack_distribution(g, 1.5 * critical_path_length(g))
        assert np.all(slack >= -1e-9)
