"""Tests for the MPEG-1 GOP task graph (paper Fig. 9)."""

import pytest

from repro.graphs.analysis import critical_path_length, total_work
from repro.graphs.mpeg import (
    B_FRAME_CYCLES,
    GOP_PATTERN,
    I_FRAME_CYCLES,
    P_FRAME_CYCLES,
    mpeg1_gop_graph,
)


class TestSingleGop:
    def test_fifteen_frames(self):
        assert mpeg1_gop_graph().n == 15

    def test_pattern(self):
        assert GOP_PATTERN == "IBBPBBPBBPBBPBB"

    def test_frame_weights(self):
        g = mpeg1_gop_graph()
        assert g.weight("I0") == I_FRAME_CYCLES
        assert g.weight("B1") == B_FRAME_CYCLES
        assert g.weight("P3") == P_FRAME_CYCLES

    def test_total_work(self):
        # 1 I + 10 B + 4 P.
        expect = I_FRAME_CYCLES + 10 * B_FRAME_CYCLES + 4 * P_FRAME_CYCLES
        assert total_work(mpeg1_gop_graph()) == expect

    def test_anchor_chain(self):
        g = mpeg1_gop_graph()
        assert "P3" in g.successors("I0")
        assert "P6" in g.successors("P3")
        assert "P12" in g.successors("P9")

    def test_b_frames_depend_on_surrounding_anchors(self):
        g = mpeg1_gop_graph()
        assert set(g.predecessors("B4")) == {"P3", "P6"}
        assert set(g.predecessors("B1")) == {"I0", "P3"}

    def test_trailing_b_frames_depend_on_last_anchor_only(self):
        g = mpeg1_gop_graph()
        assert set(g.predecessors("B13")) == {"P12"}
        assert set(g.predecessors("B14")) == {"P12"}

    def test_i_frame_is_sole_source(self):
        assert mpeg1_gop_graph().sources() == ("I0",)

    def test_critical_path_value(self):
        # I0 -> P3 -> P6 -> P9 -> P12 -> B13: anchors plus one B frame.
        expect = (I_FRAME_CYCLES + 4 * P_FRAME_CYCLES + B_FRAME_CYCLES)
        assert critical_path_length(mpeg1_gop_graph()) == expect

    def test_real_time_feasible_at_full_speed(self):
        # The GOP's CPL must fit well inside the 0.5 s deadline at 3.1 GHz.
        cpl_seconds = critical_path_length(mpeg1_gop_graph()) / 3.1e9
        assert cpl_seconds < 0.5


class TestMultiGop:
    def test_two_gops_double_nodes(self):
        assert mpeg1_gop_graph(gops=2).n == 30

    def test_gops_are_independent(self):
        g = mpeg1_gop_graph(gops=2)
        assert g.predecessors("g1_I0") == ()

    def test_names_prefixed(self):
        g = mpeg1_gop_graph(gops=2)
        assert "g0_I0" in g and "g1_B14" in g

    def test_zero_gops_raises(self):
        with pytest.raises(ValueError):
            mpeg1_gop_graph(gops=0)


class TestCustomPattern:
    def test_short_pattern(self):
        g = mpeg1_gop_graph(pattern="IBP")
        assert g.n == 3
        assert set(g.predecessors("B1")) == {"I0", "P2"}

    def test_must_start_with_i(self):
        with pytest.raises(ValueError, match="pattern"):
            mpeg1_gop_graph(pattern="BIP")

    def test_invalid_letter_rejected(self):
        with pytest.raises(ValueError, match="pattern"):
            mpeg1_gop_graph(pattern="IXP")

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            mpeg1_gop_graph(pattern="")

    def test_i_only_pattern(self):
        g = mpeg1_gop_graph(pattern="I")
        assert g.n == 1 and g.m == 0
