"""Tests for the frame-based periodic task model."""

import pytest

from repro.graphs.periodic import (
    FrameBasedWorkload,
    PeriodicTask,
    frame_based_dag,
    hyperperiod,
)


class TestPeriodicTask:
    def test_utilization(self):
        t = PeriodicTask("a", wcet=2e6, period=10e6)
        assert t.utilization == pytest.approx(0.2)

    def test_wcet_above_period_rejected(self):
        with pytest.raises(ValueError, match="period"):
            PeriodicTask("a", wcet=5.0, period=4.0)

    def test_non_positive_wcet_rejected(self):
        with pytest.raises(ValueError, match="wcet"):
            PeriodicTask("a", wcet=0.0, period=4.0)


class TestHyperperiod:
    def test_lcm(self):
        tasks = [PeriodicTask("a", 1, 4), PeriodicTask("b", 1, 6)]
        assert hyperperiod(tasks) == 12.0

    def test_single_task(self):
        assert hyperperiod([PeriodicTask("a", 1, 5)]) == 5.0

    def test_non_integer_period_rejected(self):
        with pytest.raises(ValueError, match="integral"):
            hyperperiod([PeriodicTask("a", 1, 4.5)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            hyperperiod([])


class TestFrameBasedDag:
    @pytest.fixture
    def workload(self):
        return frame_based_dag([
            PeriodicTask("a", wcet=1e6, period=4e6),
            PeriodicTask("b", wcet=2e6, period=8e6),
        ])

    def test_job_counts(self, workload):
        # Hyperperiod 8e6: a has 2 jobs, b has 1.
        assert workload.graph.n == 3
        assert ("a", 0) in workload.graph
        assert ("a", 1) in workload.graph
        assert ("b", 0) in workload.graph

    def test_job_chains(self, workload):
        assert ("a", 1) in workload.graph.successors(("a", 0))
        assert workload.graph.predecessors(("b", 0)) == ()

    def test_deadlines_at_period_boundaries(self, workload):
        assert workload.deadlines[("a", 0)] == 4e6
        assert workload.deadlines[("a", 1)] == 8e6
        assert workload.deadlines[("b", 0)] == 8e6

    def test_releases(self, workload):
        assert workload.releases[("a", 1)] == 4e6

    def test_horizon_is_hyperperiod(self, workload):
        assert workload.horizon == 8e6

    def test_utilization(self, workload):
        # (2*1e6 + 2e6) / 8e6 = 0.5.
        assert workload.utilization == pytest.approx(0.5)

    def test_unchained_jobs(self):
        w = frame_based_dag([PeriodicTask("a", 1e6, 4e6)],
                            chain_jobs=False)
        # With 1 task the hyperperiod equals the period: 1 job, no edges.
        assert w.graph.m == 0

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            frame_based_dag([PeriodicTask("a", 1, 4),
                             PeriodicTask("a", 1, 8)])


class TestSchedulingIntegration:
    def test_feeds_the_facade(self):
        from repro.core import schedule
        from repro.sched.validate import validate_schedule

        w = frame_based_dag([
            PeriodicTask("sensor", wcet=2e6, period=16e6),
            PeriodicTask("control", wcet=6e6, period=32e6),
            PeriodicTask("log", wcet=1e6, period=8e6),
        ])
        r = schedule(w.graph, w.horizon, heuristic="LAMPS+PS",
                     deadline_overrides=w.deadlines)
        validate_schedule(r.schedule)
        assert r.total_energy > 0

    def test_tight_utilization_needs_speed(self):
        from repro.core import schedule

        # Utilization 0.9 on one processor leaves little stretch room.
        w_tight = frame_based_dag([PeriodicTask("hot", 9e6, 10e6)])
        w_loose = frame_based_dag([PeriodicTask("cool", 2e6, 10e6)])
        r_tight = schedule(w_tight.graph, w_tight.horizon,
                           heuristic="LAMPS",
                           deadline_overrides=w_tight.deadlines)
        r_loose = schedule(w_loose.graph, w_loose.horizon,
                           heuristic="LAMPS",
                           deadline_overrides=w_loose.deadlines)
        assert r_tight.point.frequency > r_loose.point.frequency
