"""Tests for the STG file format reader/writer."""

import pytest

from repro.graphs.dag import TaskGraph
from repro.graphs.generators import stg_random_graph
from repro.graphs.stg import (
    STGFormatError,
    format_stg,
    load_stg,
    parse_stg,
    save_stg,
    strip_dummies,
)

SAMPLE = """\
3
  0   0   0
  1   5   1   0
  2   7   1   1
  3   2   2   1 2
  4   0   1   3
# trailing comment
"""


class TestParse:
    def test_sample_counts(self):
        g = parse_stg(SAMPLE)
        assert g.n == 5  # 3 tasks + 2 dummies
        assert g.weight(1) == 5.0
        assert g.weight(0) == 0.0

    def test_sample_edges(self):
        g = parse_stg(SAMPLE)
        assert set(g.predecessors(3)) == {1, 2}
        assert g.predecessors(1) == (0,)

    def test_comments_and_blanks_ignored(self):
        g = parse_stg("# hi\n\n1\n0 0 0\n1 3 1 0\n2 0 1 1\n")
        assert g.n == 3

    def test_name_passthrough(self):
        assert parse_stg(SAMPLE, name="demo").name == "demo"

    def test_empty_raises(self):
        with pytest.raises(STGFormatError, match="empty"):
            parse_stg("")

    def test_bad_header_raises(self):
        with pytest.raises(STGFormatError, match="task count"):
            parse_stg("3 4\n")

    def test_non_numeric_header_raises(self):
        with pytest.raises(STGFormatError, match="bad task count"):
            parse_stg("abc\n")

    def test_short_record_raises(self):
        with pytest.raises(STGFormatError, match="short task record"):
            parse_stg("1\n0 0\n")

    def test_predecessor_count_mismatch_raises(self):
        with pytest.raises(STGFormatError, match="predecessors"):
            parse_stg("1\n0 0 0\n1 3 2 0\n")

    def test_duplicate_task_raises(self):
        with pytest.raises(STGFormatError, match="duplicate"):
            parse_stg("1\n0 0 0\n0 3 0\n")

    def test_unknown_predecessor_raises(self):
        with pytest.raises(STGFormatError, match="unknown predecessor"):
            parse_stg("1\n0 0 0\n1 3 1 99\n2 0 1 1\n")

    def test_wrong_total_raises(self):
        with pytest.raises(STGFormatError, match="declares"):
            parse_stg("5\n0 0 0\n1 3 1 0\n")

    def test_without_dummies_count_accepted(self):
        # Exactly `declared` records (no dummy entry/exit) also parses.
        g = parse_stg("2\n1 3 0\n2 4 1 1\n")
        assert g.n == 2


class TestStripDummies:
    def test_removes_zero_weight_endpoints(self):
        g = strip_dummies(parse_stg(SAMPLE))
        assert set(g.node_ids) == {1, 2, 3}
        assert set(g.predecessors(3)) == {1, 2}

    def test_noop_without_dummies(self, diamond):
        assert strip_dummies(diamond) is diamond

    def test_all_dummies_raises(self):
        g = TaskGraph({"a": 0.0, "b": 0.0}, [("a", "b")])
        with pytest.raises(ValueError, match="solely"):
            strip_dummies(g)

    def test_zero_weight_interior_node_kept(self):
        g = TaskGraph({"a": 1.0, "mid": 0.0, "b": 1.0},
                      [("a", "mid"), ("mid", "b")])
        assert strip_dummies(g) is g


class TestFormat:
    def test_roundtrip_with_dummies(self, diamond):
        text = format_stg(diamond)
        back = strip_dummies(parse_stg(text))
        assert back.n == diamond.n
        assert back.m == diamond.m

    def test_roundtrip_preserves_structure(self):
        g = stg_random_graph(40, 7, name="t")
        back = strip_dummies(parse_stg(format_stg(g)))
        from repro.graphs.analysis import critical_path_length, total_work

        assert back.n == g.n and back.m == g.m
        assert critical_path_length(back) == critical_path_length(g)
        assert total_work(back) == total_work(g)

    def test_header_is_task_count(self, diamond):
        assert format_stg(diamond).splitlines()[0] == "4"

    def test_without_dummies(self, diamond):
        text = format_stg(diamond, with_dummies=False)
        g = parse_stg(text)
        assert g.n == 4

    def test_entry_connects_to_orphan_sources(self):
        g = TaskGraph({"a": 1.0, "b": 2.0}, [])
        text = format_stg(g)
        parsed = parse_stg(text)
        # Both real tasks hang off the dummy entry.
        assert set(parsed.successors(0)) == {1, 2}


class TestFileIO:
    def test_save_and_load(self, tmp_path, diamond):
        path = tmp_path / "diamond.stg"
        save_stg(diamond, path)
        g = load_stg(path)
        assert g.name == "diamond"  # named after the file stem
        assert strip_dummies(g).n == 4

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_stg(tmp_path / "nope.stg")
