"""Tests for task-graph transformations."""

import numpy as np
import pytest

from repro.graphs.analysis import (
    average_parallelism,
    critical_path_length,
    total_work,
)
from repro.graphs.dag import TaskGraph
from repro.graphs.generators import chain, stg_random_graph
from repro.graphs.transforms import (
    linear_cluster,
    merge_graphs,
    transitive_reduction,
    weight_jitter,
)


class TestLinearCluster:
    def test_chain_collapses_to_one_task(self):
        g = chain(6, weights=[1, 2, 3, 4, 5, 6])
        c = linear_cluster(g)
        assert c.n == 1
        assert total_work(c) == 21.0

    def test_diamond_is_unchanged_in_size(self, diamond):
        # No node pair in a diamond is a 1-succ/1-pred chain link...
        # except none: a has two successors, d two predecessors.
        c = linear_cluster(diamond)
        assert c.n == diamond.n

    def test_preserves_cpl_and_work(self):
        for seed in range(5):
            g = stg_random_graph(50, seed)
            c = linear_cluster(g)
            assert critical_path_length(c) == pytest.approx(
                critical_path_length(g))
            assert total_work(c) == pytest.approx(total_work(g))

    def test_reduces_task_count_on_chainy_graphs(self):
        g = TaskGraph(
            {"a": 1, "b": 1, "c": 1, "d": 1, "e": 1},
            [("a", "b"), ("b", "c"), ("c", "d"), ("c", "e")])
        c = linear_cluster(g)
        # a-b-c merge into one; d and e stay.
        assert c.n == 3
        assert ("a", "b", "c") in c.node_ids

    def test_acyclic_result(self):
        g = stg_random_graph(60, 9)
        linear_cluster(g).topological_order()

    def test_improves_ps_for_fine_grain(self):
        """The practical payoff: clustering coarsens gaps enough for PS."""
        from repro.core.sns import sns, sns_ps

        g = stg_random_graph(60, 2).scaled(3.1e4)  # fine grain
        deadline = 4 * critical_path_length(g)
        clustered = linear_cluster(g)
        raw_gain = sns(g, deadline).total_energy \
            - sns_ps(g, deadline).total_energy
        clu_gain = sns(clustered, deadline).total_energy \
            - sns_ps(clustered, deadline).total_energy
        assert clu_gain >= raw_gain - 1e-9


class TestTransitiveReduction:
    def test_removes_shortcut_edge(self):
        g = TaskGraph({"a": 1, "b": 1, "c": 1},
                      [("a", "b"), ("b", "c"), ("a", "c")])
        r = transitive_reduction(g)
        assert r.m == 2
        assert ("a", "c") not in set(r.edges())

    def test_preserves_cpl(self):
        for seed in range(4):
            g = stg_random_graph(40, seed)
            r = transitive_reduction(g)
            assert critical_path_length(r) == pytest.approx(
                critical_path_length(g))
            assert r.n == g.n

    def test_preserves_reachability(self):
        import networkx as nx

        g = stg_random_graph(30, 3)
        r = transitive_reduction(g)
        tg = nx.transitive_closure(nx.DiGraph(list(g.edges())))
        tr = nx.transitive_closure(nx.DiGraph(list(r.edges())))
        assert set(tg.edges()) == set(tr.edges())


class TestWeightJitter:
    def test_down_never_increases(self):
        g = stg_random_graph(30, 1)
        j = weight_jitter(g, 0.3, 7)
        for v in g.node_ids:
            assert j.weight(v) <= g.weight(v) + 1e-12
            assert j.weight(v) >= 0.7 * g.weight(v) - 1e-12

    def test_structure_unchanged(self):
        g = stg_random_graph(30, 1)
        j = weight_jitter(g, 0.2, 0)
        assert set(j.edges()) == set(g.edges())

    def test_zero_fraction_is_identity_weights(self):
        g = stg_random_graph(20, 4)
        j = weight_jitter(g, 0.0, 0)
        assert np.allclose(j.weights_array, g.weights_array)

    def test_both_direction_can_increase(self):
        g = stg_random_graph(30, 1)
        j = weight_jitter(g, 0.3, 3, direction="both")
        assert any(j.weight(v) > g.weight(v) for v in g.node_ids)

    def test_bad_args(self):
        g = chain(3)
        with pytest.raises(ValueError):
            weight_jitter(g, 1.5)
        with pytest.raises(ValueError):
            weight_jitter(g, 0.2, direction="sideways")

    def test_deterministic(self):
        g = stg_random_graph(20, 6)
        a = weight_jitter(g, 0.2, 42)
        b = weight_jitter(g, 0.2, 42)
        assert np.allclose(a.weights_array, b.weights_array)

    def test_schedule_still_valid_with_actual_times(self):
        """Failure-injection: schedules built on worst-case weights stay
        precedence-valid when tasks finish early (the runtime invariant
        the frame-based model relies on)."""
        from repro.sched.deadlines import task_deadlines
        from repro.sched.list_scheduler import list_schedule

        g = stg_random_graph(40, 8)
        d = task_deadlines(g, 4 * critical_path_length(g))
        s = list_schedule(g, 4, d)
        actual = weight_jitter(g, 0.4, 5)
        # Starting each task at its scheduled time but running the
        # shorter actual duration can never violate precedence.
        for u, v in g.edges():
            finish_u = s.placement(u).start + actual.weight(u)
            assert finish_u <= s.placement(v).start + 1e-9


class TestMergeGraphs:
    def test_counts_add(self, diamond, fig4_graph):
        m = merge_graphs(diamond, fig4_graph)
        assert m.n == diamond.n + fig4_graph.n
        assert m.m == diamond.m + fig4_graph.m

    def test_components_independent(self, diamond, fig4_graph):
        m = merge_graphs(diamond, fig4_graph)
        assert m.predecessors((1, "T1")) == ()
        assert (0, "b") in m.successors((0, "a"))

    def test_parallelism_grows(self, diamond):
        single = average_parallelism(diamond)
        double = average_parallelism(merge_graphs(diamond, diamond))
        assert double == pytest.approx(2 * single)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_graphs()
