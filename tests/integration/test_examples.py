"""Smoke tests: every example script runs end-to-end.

Examples are the adoption surface; a broken example is a broken
deliverable, so each is executed as a real subprocess (the way a user
would run it) and must exit cleanly with its headline output present.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

CASES = {
    "quickstart.py": "LAMPS+PS",
    "mpeg1_encoder.py": "Table 3",
    "kpn_pipeline.py": "throughput met",
    "periodic_tasks.py": "period deadlines",
    "runtime_reclaim.py": "leakage-aware",
    "big_little.py": "big.LITTLE",
    "design_space.py": "LAMPS+PS best configuration",
    "stg_campaign.py": "MEAN",
}


@pytest.mark.parametrize("script", sorted(CASES))
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert CASES[script] in proc.stdout


def test_every_example_is_covered():
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    assert on_disk == set(CASES)
