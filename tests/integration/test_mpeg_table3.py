"""Integration test: the full MPEG-1 pipeline against the paper's Table 3."""

import pytest

from repro.core.platform import default_platform
from repro.core.results import Heuristic
from repro.core.suite import paper_suite
from repro.graphs.mpeg import MPEG_DEADLINE_SECONDS, mpeg1_gop_graph
from repro.sched.validate import validate_schedule


@pytest.fixture(scope="module")
def results():
    plat = default_platform()
    graph = mpeg1_gop_graph()
    deadline = plat.reference_cycles(MPEG_DEADLINE_SECONDS)
    return paper_suite(graph, deadline, platform=plat)


class TestTable3Reproduction:
    def test_lamps_uses_three_processors(self, results):
        # Paper Table 3: LAMPS -> 3 processors.
        assert results[Heuristic.LAMPS].n_processors == 3

    def test_lamps_ps_uses_six_processors(self, results):
        # Paper Table 3: LAMPS+PS -> 6 processors.
        assert results[Heuristic.LAMPS_PS].n_processors == 6

    def test_sns_spreads_wide(self, results):
        # Paper: 7; EDF tie-breaking detail gives 7-8 here.
        assert results[Heuristic.SNS].n_processors in (7, 8)

    def test_lamps_saves_about_26_percent(self, results):
        rel = results[Heuristic.LAMPS].total_energy / \
            results[Heuristic.SNS].total_energy
        # Paper: 13.290 / 18.116 = 0.734.
        assert rel == pytest.approx(0.734, abs=0.03)

    def test_ps_variants_save_about_40_percent(self, results):
        for h in (Heuristic.SNS_PS, Heuristic.LAMPS_PS):
            rel = results[h].total_energy / \
                results[Heuristic.SNS].total_energy
            # Paper: ~0.604.
            assert rel == pytest.approx(0.604, abs=0.03)

    def test_ps_variants_within_one_percent_of_limit(self, results):
        limit = results[Heuristic.LIMIT_SF].total_energy
        assert results[Heuristic.LAMPS_PS].total_energy <= limit * 1.01
        assert results[Heuristic.SNS_PS].total_energy <= limit * 1.01

    def test_limits_coincide_for_this_deadline(self, results):
        # Table 3: LIMIT-SF == LIMIT-MF == 10.940 (the critical speed is
        # feasible within the 0.5 s deadline).
        assert results[Heuristic.LIMIT_SF].total_energy == pytest.approx(
            results[Heuristic.LIMIT_MF].total_energy)

    def test_limit_mf_meets_the_real_time_deadline(self, results):
        assert results[Heuristic.LIMIT_MF].meets_deadline

    def test_schedules_valid(self, results):
        for h in (Heuristic.SNS, Heuristic.LAMPS, Heuristic.SNS_PS,
                  Heuristic.LAMPS_PS):
            validate_schedule(results[h].schedule)

    def test_absolute_energy_scale(self, results):
        # From the Fig. 9 cycle counts the model gives ~1.10 J at the
        # limit (the paper's table prints 10.940 — a 10x unit quirk
        # documented in DESIGN.md).
        assert results[Heuristic.LIMIT_SF].total_energy == pytest.approx(
            1.096, abs=0.02)
