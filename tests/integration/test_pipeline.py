"""End-to-end integration tests across the whole stack."""


from repro.core.api import schedule
from repro.core.platform import Platform, default_platform
from repro.core.results import Heuristic
from repro.core.suite import paper_suite
from repro.graphs.analysis import critical_path_length
from repro.graphs.generators import stg_random_graph
from repro.graphs.kpn import Channel, ProcessNetwork
from repro.graphs.stg import format_stg, parse_stg, strip_dummies
from repro.power.dvs import DVSLadder
from repro.power.shutdown import SleepModel
from repro.power.technology import TECH_70NM
from repro.sched.deadlines import task_deadlines
from repro.sched.validate import check_deadlines, validate_schedule


class TestStgFileWorkflow:
    def test_generate_save_load_schedule(self, tmp_path):
        """The downstream-user workflow: graphs from STG files."""
        g = stg_random_graph(40, 13, name="w")
        path = tmp_path / "w.stg"
        path.write_text(format_stg(g))
        loaded = strip_dummies(parse_stg(path.read_text(), name="w"))
        r = schedule(loaded.scaled(3.1e6), deadline_factor=2.0)
        validate_schedule(r.schedule)
        assert r.total_energy > 0


class TestKpnWorkflow:
    def test_unroll_and_schedule_with_overrides(self):
        plat = default_platform()
        net = ProcessNetwork(
            {"src": 2e6, "work": 8e6, "sink": 2e6},
            [Channel("src", "work"), Channel("work", "sink")])
        unrolled = net.unroll(4, period=20e6, first_deadline=40e6)
        r = schedule(unrolled.graph, unrolled.horizon,
                     heuristic="LAMPS+PS",
                     deadline_overrides=unrolled.deadlines)
        validate_schedule(r.schedule)
        d = task_deadlines(unrolled.graph, unrolled.horizon,
                           overrides=unrolled.deadlines)
        assert check_deadlines(
            r.schedule, d,
            frequency_ratio=r.point.frequency / plat.fmax) is None

    def test_throughput_forces_faster_schedule(self):
        net = ProcessNetwork({"a": 5e6, "b": 5e6},
                             [Channel("a", "b")])
        slow = net.unroll(4, period=40e6, first_deadline=40e6)
        fast = net.unroll(4, period=11e6, first_deadline=11e6)
        r_slow = schedule(slow.graph, slow.horizon, heuristic="LAMPS",
                          deadline_overrides=slow.deadlines)
        r_fast = schedule(fast.graph, fast.horizon, heuristic="LAMPS",
                          deadline_overrides=fast.deadlines)
        assert r_fast.point.frequency >= r_slow.point.frequency


class TestCustomTechnologyPipeline:
    def test_leakier_technology_favors_fewer_processors(self):
        """More leakage -> turning processors off matters more."""
        g = stg_random_graph(60, 3).scaled(3.1e6)
        deadline = 4 * critical_path_length(g)
        base = default_platform()
        leaky = Platform(
            ladder=DVSLadder(TECH_70NM.with_overrides(l_g=4.0e7)),
            sleep=SleepModel())
        r_base = schedule(g, deadline, heuristic="LAMPS", platform=base)
        r_leaky = schedule(g, deadline, heuristic="LAMPS", platform=leaky)
        assert r_leaky.n_processors <= r_base.n_processors

    def test_no_leakage_makes_sns_near_optimal(self):
        """With negligible static power the DVS-only baseline is fine —
        the regime where S&S was designed (the paper's motivation)."""
        g = stg_random_graph(60, 3).scaled(3.1e6)
        deadline = 2 * critical_path_length(g)
        lowleak = Platform(
            ladder=DVSLadder(TECH_70NM.with_overrides(l_g=4.0e3,
                                                      p_on=1e-4)),
            sleep=SleepModel())
        res = paper_suite(g, deadline, platform=lowleak)
        rel = res[Heuristic.LAMPS_PS].total_energy / \
            res[Heuristic.SNS].total_energy
        assert rel > 0.9  # little left to win without leakage


class TestGranularityCrossover:
    def test_ps_gains_shrink_for_fine_grain(self):
        """Fig. 10 vs Fig. 11: shutdown pays for coarse tasks only."""
        g = stg_random_graph(50, 21)
        deadline_factor = 2.0
        gains = {}
        for scale in (3.1e6, 3.1e4):
            gg = g.scaled(scale)
            res = paper_suite(gg, deadline_factor
                              * critical_path_length(gg))
            gains[scale] = 1.0 - res[Heuristic.SNS_PS].total_energy \
                / res[Heuristic.SNS].total_energy
        assert gains[3.1e6] >= gains[3.1e4] - 1e-9


class TestDeterminismAcrossRuns:
    def test_full_suite_reproducible(self):
        g = stg_random_graph(40, 9).scaled(3.1e6)
        deadline = 2 * critical_path_length(g)
        a = paper_suite(g, deadline)
        b = paper_suite(g, deadline)
        for h in Heuristic:
            assert a[h].total_energy == b[h].total_energy
            assert a[h].n_processors == b[h].n_processors
