"""Golden-value regression tests on the bundled dataset.

Every quantity here was produced by this repository and is fully
deterministic (seeded workloads, closed-form energy model), so any
drift indicates an unintended behaviour change in the scheduler, the
heuristics, or the power model.  Tolerances are loose enough to absorb
floating-point reassociation across numpy versions, tight enough to
catch real changes.
"""

import pytest

from repro.core import Heuristic, paper_suite
from repro.graphs import load_bundled
from repro.graphs.analysis import critical_path_length

#: name -> heuristic -> (total energy [J], employed processors).
GOLDEN = {
    "rand50_000": {
        "S&S": (1.1606680416578097, 9),
        "LAMPS": (0.6338127343411065, 3),
        "S&S+PS": (0.5374279531922647, 9),
        "LAMPS+PS": (0.528683731576967, 4),
        "LIMIT-SF": (0.5214247179294874, None),
        "LIMIT-MF": (0.4921669544076176, None),
    },
    "rand50_001": {
        "S&S": (0.9224262315936228, 3),
        "LAMPS": (0.6239141724061642, 1),
        "S&S+PS": (0.5593523110032383, 3),
        "LAMPS+PS": (0.5545006152654298, 2),
        "LIMIT-SF": (0.5486887554682841, None),
        "LIMIT-MF": (0.5179011742459244, None),
    },
    "robot": {
        "S&S": (8.09024637259841, 11),
        "LAMPS": (5.324739398156168, 3),
        "S&S+PS": (4.211785676729994, 11),
        "LAMPS+PS": (4.197987968926623, 6),
        "LIMIT-SF": (4.190141769243822, None),
        "LIMIT-MF": (3.955027911399777, None),
    },
    "sparse": {
        "S&S": (7.003684078510135, 44),
        "LAMPS": (4.193493381511514, 17),
        "S&S+PS": (3.317461519871898, 44),
        "LAMPS+PS": (3.2991583273641947, 26),
        "LIMIT-SF": (3.2716845046556076, None),
        "LIMIT-MF": (3.0881063805968165, None),
    },
}


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_golden_energies_and_processor_counts(name):
    g = load_bundled(name).scaled(3.1e6)
    deadline = 2 * critical_path_length(g)
    results = paper_suite(g, deadline)
    for h, r in results.items():
        expect_e, expect_n = GOLDEN[name][h.value]
        assert r.total_energy == pytest.approx(expect_e, rel=1e-6), \
            (name, h.value)
        assert r.n_processors == expect_n, (name, h.value)


def test_golden_set_covers_all_heuristics():
    for table in GOLDEN.values():
        assert set(table) == {h.value for h in Heuristic}
