"""Shared helpers for the lint-engine tests."""

import re
from pathlib import Path

import pytest

FIXTURES = Path(__file__).parent / "fixtures"

_EXPECT = re.compile(r"#\s*expect:\s*([A-Z0-9, ]+)")


def expected_markers(path: Path) -> list:
    """``(line, code)`` pairs from the ``# expect: CODE`` markers."""
    out = []
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        m = _EXPECT.search(line)
        if m:
            for code in m.group(1).split(","):
                out.append((lineno, code.strip()))
    return sorted(out)


@pytest.fixture
def fixtures_dir() -> Path:
    return FIXTURES
