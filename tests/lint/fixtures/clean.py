"""Fixture: a module with no findings under any scope."""

import time


def elapsed_seconds(t0: float) -> float:
    return time.perf_counter() - t0


def pick(rng, items: list):
    return items[rng.integers(len(items))]
