"""Fixture: concurrency rules (CONC001-CONC004) fire at the marks."""

import asyncio
import threading
import time
from multiprocessing import shared_memory


def read_config(path):
    handle = open(path)
    try:
        return handle.read()
    finally:
        handle.close()


async def blocks_directly():
    time.sleep(0.5)  # expect: CONC001
    return 1


async def blocks_through_helper(path):
    data = read_config(path)  # expect: CONC001
    return data


async def hands_off_properly(path):
    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(None, read_config, path)


async def awaiting_is_fine():
    await asyncio.sleep(0.5)
    return 1


class Guarded:
    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0

    async def refresh(self):
        with self._lock:
            await asyncio.sleep(0.1)  # expect: CONC002
            self.value += 1

    async def peek(self):
        with self._lock:
            value = self.value
        await asyncio.sleep(0)
        return value


class Pair:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def forward(self):
        with self._a:
            with self._b:  # expect: CONC003
                return 1

    def backward(self):
        with self._b:
            with self._a:  # expect: CONC003
                return 2


class Ordered:
    def __init__(self):
        self._first = threading.Lock()
        self._second = threading.Lock()

    def one_way(self):
        with self._first:
            with self._second:
                return 1

    def same_way(self):
        with self._first:
            with self._second:
                return 2


def publish(payload):
    seg = shared_memory.SharedMemory(create=True, size=len(payload))  # expect: CONC004
    seg.buf[: len(payload)] = payload
    return seg.name


def publish_safely(payload):
    seg = shared_memory.SharedMemory(create=True, size=len(payload))
    try:
        seg.buf[: len(payload)] = payload
    except BaseException:
        seg.close()
        seg.unlink()
        raise
    return seg.name
