"""Fixture: every determinism rule fires at the marked lines."""

import random
import time

import numpy as np
from random import gauss  # expect: DET001
from numpy.random import rand  # expect: DET001
from time import time as _wall  # expect: DET002
from os import environ  # expect: DET003


def draw() -> float:
    return random.random()  # expect: DET001


def draw_np() -> float:
    return np.random.rand()  # expect: DET001


def unseeded_generators() -> None:
    random.Random()  # expect: DET001
    np.random.default_rng()  # expect: DET001
    np.random.RandomState()  # expect: DET001


def seeded_generators_are_fine(seed: int) -> None:
    random.Random(seed)
    np.random.default_rng(seed)
    np.random.default_rng(seed=seed)
    np.random.SeedSequence(entropy=seed)


def stamp() -> float:
    return time.time()  # expect: DET002


def monotonic_is_fine() -> float:
    return time.perf_counter()


def config() -> str:
    import os
    return os.environ["HOME"]  # expect: DET003


def getenv_too() -> "str | None":
    import os
    return os.getenv("HOME")  # expect: DET003


def set_order(items: list) -> list:
    out = []
    for x in {1, 2, 3}:  # expect: DET004
        out.append(x)
    out += [y for y in set(items)]  # expect: DET004
    out += list({*items} - {1})  # expect: DET004
    return out


def sorted_sets_are_fine(items: list) -> list:
    return sorted(set(items))
