"""Fixture: kernel-discipline rules fire at the marked lines."""


def bypass_constructor(Schedule, graph):
    s = Schedule.__new__(Schedule)  # expect: KER001
    s._init_arrays(graph)  # expect: KER001
    t = object.__new__(Schedule)  # expect: KER001
    t._materialize()  # expect: KER001
    return s, t


def blessed_is_fine(Schedule, graph, placements, arrays):
    a = Schedule(graph, 2, placements)
    b = Schedule.from_arrays(graph, 2, *arrays)
    return a, b


def bypass_batch_constructor(ScheduleBatch, schedules):
    b = ScheduleBatch.__new__(ScheduleBatch)  # expect: KER001
    c = object.__new__(ScheduleBatch)  # expect: KER001
    return b, c


def blessed_batch_is_fine(ScheduleBatch, schedules):
    return ScheduleBatch.from_schedules(schedules)


def mutate_batch(batch, value):
    batch.gap_flat[0] = value  # expect: KER002
    batch.employed_counts = value  # expect: KER002
    batch.makespans.setflags(write=True)  # expect: KER002
    return batch


def mutate(sched, value):
    sched._starts[0] = value  # expect: KER002
    sched.start_times[1] = value  # expect: KER002
    sched._proc_busy += value  # expect: KER002
    sched.finish_times = value  # expect: KER002
    del sched._procs  # expect: KER002
    sched._order.setflags(write=True)  # expect: KER002
    return sched


def thaw(arr):
    arr.setflags(write=True)  # expect: KER002
    arr.setflags(write=False)  # freezing your own array is fine
    return arr


def scalar_energy(schedule_energy, sched, point, deadline_seconds):
    return schedule_energy(sched, point, deadline_seconds)  # expect: KER003


def sweep_is_fine(schedule_energy_sweep, sched, points, deadline_seconds):
    return schedule_energy_sweep(sched, points, deadline_seconds)[0]
