"""Fixture: resource-lifetime rule (RES001) fires at the marks."""

import os
import tempfile


def leak_fd_on_exception(path):
    fd = os.open(path, os.O_RDONLY)  # expect: RES001
    data = os.read(fd, 16)
    os.close(fd)
    return data


def leak_file_on_fallthrough(path):
    handle = open(path)  # expect: RES001
    if path.endswith(".txt"):
        handle.close()


def leak_tmp_pair():
    fd, tmp = tempfile.mkstemp()  # expect: RES001, RES001
    os.write(fd, b"x")
    os.close(fd)


def closed_in_finally(path):
    fd = os.open(path, os.O_RDONLY)
    try:
        return os.read(fd, 16)
    finally:
        os.close(fd)


def context_manager_is_fine(path):
    with open(path) as handle:
        return handle.read()


def tmp_released_everywhere():
    fd, tmp = tempfile.mkstemp()
    try:
        os.write(fd, b"x")
    finally:
        os.close(fd)
        os.unlink(tmp)
    return None


def publishing_is_fine(path):
    return open(path)
