"""Fixture: noqa suppressions — used, bare, unused and unknown."""

import random
import time


def suppressed_draw() -> float:
    return random.random()  # repro: noqa[DET001]


def bare_suppression() -> float:
    return time.time()  # repro: noqa


def multi_code() -> float:
    x_seconds = time.time()  # repro: noqa[DET002,UNIT003]
    return x_seconds


def clean_line() -> int:
    return 1  # repro: noqa[DET001]  # expect: LINT001


def unknown_code() -> int:
    return 2  # repro: noqa[NOPE999]  # expect: LINT002
