"""Fixture: unit-safety rules fire at the marked lines."""


def stretch(deadline: float) -> float:  # expect: UNIT001
    return deadline * 2.0


def window(horizon, idle_power):  # expect: UNIT001, UNIT001
    return horizon * idle_power


def suffixed_is_fine(deadline_cycles: float,
                     idle_power_watts: float) -> float:
    return deadline_cycles * idle_power_watts


def plural_vector_is_fine(deadlines: list) -> list:
    return deadlines


def canonical_symbols_are_fine(vdd: float, vbs: float, f: float) -> float:
    return vdd + vbs + f


def ratios_are_fine(cycles_per_period: float) -> float:
    return cycles_per_period


def total_energy(n: int) -> float:  # expect: UNIT002
    return float(n)


def total_energy_joules(n: int) -> float:
    return float(n)


def documented_energy(n: int) -> float:
    """Energy of ``n`` somethings (J)."""
    return float(n)


def _private_energy(n: int) -> float:
    return float(n)


def mixed(x_seconds: float, y_cycles: float) -> float:
    bad = x_seconds + y_cycles  # expect: UNIT003
    worse = x_seconds < y_cycles  # expect: UNIT003
    fine_product = x_seconds * y_cycles
    fine_same = x_seconds + x_seconds
    return bad + float(worse) + fine_product + fine_same


class Model:
    def latency(self, interval: float) -> float:  # expect: UNIT001, UNIT002
        return interval

    def _internal(self, duration: float) -> float:
        return duration


class _Hidden:
    def voltage(self, period: float) -> float:
        return period
