"""Fixture: dataflow unit propagation (UNIT003) fires at the marks."""


def deadline_seconds():
    return 5.0


def horizon_cycles():
    return 1000.0


def remaining(duration_seconds, used_seconds):
    return duration_seconds - used_seconds


def propagates_through_locals():
    budget = deadline_seconds()
    slack = horizon_cycles()
    return budget + slack  # expect: UNIT003


def assignment_mismatch():
    t_cycles = 100.0
    window_seconds = t_cycles  # expect: UNIT003
    return window_seconds


def compare_mismatch(limit_seconds, budget_cycles):
    if limit_seconds < budget_cycles:  # expect: UNIT003
        return limit_seconds
    return budget_cycles


def one_call_level(total_cycles):
    spent = remaining(3.0, 1.0)
    return total_cycles - spent  # expect: UNIT003


def conversion_is_fine(duration_seconds, clock_hz):
    total_cycles = duration_seconds * clock_hz
    return total_cycles + 1.0


def ambiguous_merge_stays_silent(flag, t_seconds, n_cycles):
    value = t_seconds if flag else n_cycles
    return value + 1.0


def constants_adopt_the_other_side(timeout_seconds):
    return timeout_seconds + 1.5
