"""Unit tests for the interprocedural dataflow engine.

The fixture tests (`test_rules.py`) pin each rule's end-to-end
behaviour; these tests pin the machinery underneath — symbol
resolution across modules, call-graph edge construction (async,
handoff, constructor), CFG exception/finally edges, and the DOT
dumps behind ``repro lint --graph``.
"""

import ast

from repro.lint.cli import main
from repro.lint.dataflow import ProjectIndex, build_cfg
from repro.lint.dataflow.concurrency import blocking_taint, lock_graph
from repro.lint.dataflow.resources import leak_sites
from repro.lint.dataflow.symbols import FunctionInfo

from .conftest import FIXTURES


def make_project(tmp_path, files):
    """A ProjectIndex over a scratch ``pkg`` package."""
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    paths = [pkg / "__init__.py"]
    for name, body in files.items():
        path = pkg / name
        path.write_text(body)
        paths.append(path)
    return ProjectIndex.build(paths, paths)


def fn_named(project, suffix) -> FunctionInfo:
    for qual, fn in project.table.functions.items():
        if qual.endswith(suffix):
            return fn
    raise AssertionError(f"no function {suffix!r} in "
                         f"{sorted(project.table.functions)}")


# ----------------------------------------------------------------------
# Symbol table
# ----------------------------------------------------------------------
class TestSymbols:
    def test_cross_module_return_annotation_resolves(self, tmp_path):
        project = make_project(tmp_path, {
            "store.py": ("class Store:\n"
                         "    def get(self, key):\n"
                         "        return None\n"
                         "def open_store() -> 'Store':\n"
                         "    return Store()\n"),
            "app.py": ("from .store import open_store\n"
                       "class App:\n"
                       "    def __init__(self):\n"
                       "        self.store = open_store()\n"
                       "    def lookup(self, key):\n"
                       "        return self.store.get(key)\n"),
        })
        # The annotation names 'Store' in store.py's namespace, so the
        # attribute type of App.store must resolve even though app.py
        # never imports the class itself.
        app = fn_named(project, "App.lookup").owner
        assert app.attr_types["store"].endswith("store.Store")
        sites = project.graph.calls_of(fn_named(project, "App.lookup"))
        callees = [s.callee for s in sites]
        assert any(isinstance(c, FunctionInfo) and
                   c.qualname.endswith("Store.get") for c in callees)

    def test_nested_defs_are_separate_functions(self, tmp_path):
        project = make_project(tmp_path, {
            "m.py": ("def outer():\n"
                     "    def inner():\n"
                     "        return 1\n"
                     "    return inner()\n"),
        })
        inner = fn_named(project, "outer.<locals>.inner")
        sites = project.graph.calls_of(fn_named(project, "m.outer"))
        assert [s.callee for s in sites] == [inner]

    def test_generic_annotations_stay_unresolved(self, tmp_path):
        project = make_project(tmp_path, {
            "m.py": ("from typing import Dict\n"
                     "class Box:\n"
                     "    def __init__(self):\n"
                     "        self.items: Dict[str, int] = {}\n"),
        })
        box = fn_named(project, "Box.__init__").owner
        assert "items" not in box.attr_types


# ----------------------------------------------------------------------
# Call graph
# ----------------------------------------------------------------------
class TestCallGraph:
    def test_awaited_flag_and_async_nodes(self, tmp_path):
        project = make_project(tmp_path, {
            "m.py": ("async def worker():\n"
                     "    return 1\n"
                     "async def driver():\n"
                     "    return await worker()\n"),
        })
        sites = project.graph.calls_of(fn_named(project, "driver"))
        assert len(sites) == 1 and sites[0].awaited
        assert sites[0].callee.is_async

    def test_handoff_calls_create_no_edge(self, tmp_path):
        project = make_project(tmp_path, {
            "m.py": ("import asyncio\n"
                     "def blocking():\n"
                     "    return open('/dev/null')\n"
                     "async def driver():\n"
                     "    loop = asyncio.get_running_loop()\n"
                     "    return await loop.run_in_executor("
                     "None, blocking)\n"),
        })
        sites = project.graph.calls_of(fn_named(project, "driver"))
        assert not any(isinstance(s.callee, FunctionInfo)
                       for s in sites)

    def test_constructor_edges_reach_init(self, tmp_path):
        project = make_project(tmp_path, {
            "m.py": ("class Thing:\n"
                     "    def __init__(self):\n"
                     "        self.x = 1\n"
                     "def build():\n"
                     "    return Thing()\n"),
        })
        sites = project.graph.calls_of(fn_named(project, "m.build"))
        assert any(isinstance(s.callee, FunctionInfo) and
                   s.callee.qualname.endswith("Thing.__init__")
                   for s in sites)

    def test_blocking_taint_propagates_sync_edges(self, tmp_path):
        project = make_project(tmp_path, {
            "m.py": ("def low():\n"
                     "    return open('/dev/null')\n"
                     "def mid():\n"
                     "    return low()\n"
                     "async def high():\n"
                     "    return mid()\n"),
        })
        taint = blocking_taint(project.graph)
        assert any(q.endswith("m.low") for q in taint)
        assert any(q.endswith("m.mid") for q in taint)
        # async functions are never themselves tainted
        assert not any(q.endswith("m.high") for q in taint)

    def test_call_graph_dot_is_wellformed(self, tmp_path):
        project = make_project(tmp_path, {
            "m.py": ("def a():\n    return b()\n"
                     "def b():\n    return 1\n"),
        })
        dot = project.graph.to_dot()
        assert dot.startswith("digraph") and dot.rstrip().endswith("}")
        assert '"' in dot and "->" in dot


# ----------------------------------------------------------------------
# CFG
# ----------------------------------------------------------------------
def cfg_for(src):
    fn = ast.parse(src).body[0]
    return build_cfg(fn)


class TestCFG:
    def test_straight_line_reaches_exit(self):
        cfg = cfg_for("def f():\n    x = 1\n    y = 2\n")
        # entry -> x -> y -> exit, no exception edges anywhere
        assert all(not exc for exc in cfg.exc_succ)

    def test_call_statement_has_exception_edge(self):
        cfg = cfg_for("def f(p):\n    x = work(p)\n")
        flat = [e for exc in cfg.exc_succ for e in exc]
        assert cfg.exc_exit in flat

    def test_finally_runs_on_exception_path(self):
        cfg = cfg_for(
            "def f(p):\n"
            "    try:\n"
            "        x = work(p)\n"
            "    finally:\n"
            "        cleanup()\n")
        # the exception edge of the try body must route through a
        # finally copy, not jump straight to exc_exit
        for idx, stmt in enumerate(cfg.stmts):
            if stmt is not None and isinstance(stmt, ast.Assign):
                assert cfg.exc_exit not in cfg.exc_succ[idx]
                assert cfg.exc_succ[idx]

    def test_catch_all_handler_suppresses_escape(self):
        cfg = cfg_for(
            "def f(p):\n"
            "    try:\n"
            "        x = work(p)\n"
            "    except Exception:\n"
            "        x = None\n"
            "    return x\n")
        flat = [e for exc in cfg.exc_succ for e in exc]
        assert cfg.exc_exit not in flat

    def test_return_nodes_are_marked(self):
        cfg = cfg_for("def f():\n    return 1\n")
        assert any(cfg.is_return)


# ----------------------------------------------------------------------
# Leak analysis
# ----------------------------------------------------------------------
class TestLeaks:
    def leaks(self, tmp_path, body, kinds=frozenset({"fd", "file",
                                                     "tmp", "tmpdir"})):
        project = make_project(tmp_path, {"m.py": body})
        out = []
        for fn in project.target_functions():
            out.extend(leak_sites(fn, project.table, kinds))
        return out

    def test_exception_path_leak_found(self, tmp_path):
        out = self.leaks(tmp_path, (
            "import os\n"
            "def f(p):\n"
            "    fd = os.open(p, 0)\n"
            "    data = os.read(fd, 1)\n"
            "    os.close(fd)\n"
            "    return data\n"))
        assert [(leak.var, leak.on_exception) for leak in out] == \
            [("fd", True)]

    def test_finally_close_is_clean(self, tmp_path):
        out = self.leaks(tmp_path, (
            "import os\n"
            "def f(p):\n"
            "    fd = os.open(p, 0)\n"
            "    try:\n"
            "        data = os.read(fd, 1)\n"
            "    finally:\n"
            "        os.close(fd)\n"
            "    return data\n"))
        assert out == []


# ----------------------------------------------------------------------
# Lock-order graph and the --graph CLI
# ----------------------------------------------------------------------
class TestLockGraph:
    def test_nested_withs_make_edges(self, tmp_path):
        project = make_project(tmp_path, {
            "m.py": ("import threading\n"
                     "class C:\n"
                     "    def __init__(self):\n"
                     "        self._a = threading.Lock()\n"
                     "        self._b = threading.Lock()\n"
                     "    def f(self):\n"
                     "        with self._a:\n"
                     "            with self._b:\n"
                     "                return 1\n"),
        })
        edges = lock_graph(project)
        assert len(edges) == 1
        (held, acquired), = edges
        assert held.endswith("C._a") and acquired.endswith("C._b")

    def test_graph_flag_prints_both_dots(self, capsys):
        rc = main(["--graph", str(FIXTURES / "conc_violations.py")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "digraph callgraph" in out
        assert "digraph lockorder" in out
        assert "color=red" in out  # the Pair cycle is highlighted


def test_project_rules_skip_non_target_modules(tmp_path):
    """Context modules inform the analysis but produce no findings."""
    from repro.lint import LintConfig, run_lint

    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "worker.py").write_text(
        "def slow():\n    return open('/dev/null')\n")
    (pkg / "server.py").write_text(
        "from .worker import slow\n"
        "async def handle():\n"
        "    return slow()\n")
    config = LintConfig(select=frozenset({"CONC001"}))
    # Linting only worker.py: handle()'s finding lands in server.py,
    # which is not a target, so the run is clean.
    assert run_lint([pkg / "worker.py"], config) == []
    findings = run_lint([pkg / "server.py"], config)
    assert [f.code for f in findings] == ["CONC001"]
