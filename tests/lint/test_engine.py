"""Engine behaviour: noqa suppressions, select/ignore, CLI contract."""

import json

import pytest

from repro.lint import LintConfig, run_lint
from repro.lint.cli import main
from repro.lint.finding import Finding, Suppression

from .conftest import FIXTURES, expected_markers

ALL_SCOPES = LintConfig(all_scopes=True)


def pairs(findings):
    return sorted((f.line, f.code) for f in findings)


class TestSuppressions:
    def test_used_unused_and_unknown(self):
        # suppressed.py carries one finding per suppression except the
        # deliberately stale noqa[DET001] (-> LINT001) and the unknown
        # code noqa[NOPE999] (-> LINT002).
        path = FIXTURES / "suppressed.py"
        findings = run_lint([path], ALL_SCOPES)
        assert pairs(findings) == expected_markers(path)
        assert {f.code for f in findings} == {"LINT001", "LINT002"}

    def test_no_noqa_shows_everything(self):
        config = LintConfig(all_scopes=True, respect_noqa=False)
        findings = run_lint([FIXTURES / "suppressed.py"], config)
        assert pairs(findings) == [(8, "DET001"), (12, "DET002"),
                                   (16, "DET002")]

    def test_narrow_select_keeps_foreign_noqa_quiet(self):
        # A --select that skips DET001 must not call the noqa[DET001]
        # comments stale; the unknown-code finding still surfaces.
        config = LintConfig(select=frozenset({"KER001"}),
                            all_scopes=True)
        findings = run_lint([FIXTURES / "suppressed.py"], config)
        assert pairs(findings) == [(25, "LINT002")]

    def test_suppression_matches_same_line_only(self):
        sup = Suppression(path="x.py", line=8,
                          codes=frozenset({"DET001"}), col=0)
        on_line = Finding(code="DET001", message="m", path="x.py",
                          line=8, col=0)
        next_line = Finding(code="DET001", message="m", path="x.py",
                            line=9, col=0)
        other_code = Finding(code="DET002", message="m", path="x.py",
                             line=8, col=0)
        assert sup.matches(on_line)
        assert not sup.matches(next_line)
        assert not sup.matches(other_code)

    def test_bare_suppression_matches_any_code(self):
        sup = Suppression(path="x.py", line=3, codes=None, col=0)
        assert sup.matches(Finding(code="KER002", message="m",
                                   path="x.py", line=3, col=0))


class TestCli:
    def test_clean_file_exits_zero(self, capsys):
        rc = main([str(FIXTURES / "clean.py"), "--all-scopes"])
        assert rc == 0
        assert "clean: no findings" in capsys.readouterr().out

    def test_findings_exit_one_with_summary(self, capsys):
        rc = main([str(FIXTURES / "det_violations.py"), "--all-scopes",
                   "--select", "DET001"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "DET001" in out
        assert "findings in 1 file" in out

    def test_json_format(self, capsys):
        rc = main([str(FIXTURES / "det_violations.py"), "--all-scopes",
                   "--select", "DET001", "--format", "json"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload and all(f["code"] == "DET001" for f in payload)
        assert {"code", "message", "path", "line", "col"} <= \
            set(payload[0])

    def test_unknown_select_code_is_usage_error(self, capsys):
        assert main(["--select", "NOPE123"]) == 2
        assert "unknown rule code" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, capsys):
        assert main(["does/not/exist.py"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_list_rules_names_every_family(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("DET001", "DET002", "DET003", "DET004",
                     "UNIT001", "UNIT002", "UNIT003",
                     "KER001", "KER002", "KER003",
                     "CONC001", "CONC002", "CONC003", "CONC004",
                     "RES001"):
            assert code in out

    def test_ignore_drops_a_family(self, capsys):
        rc = main([str(FIXTURES / "det_violations.py"), "--all-scopes",
                   "--ignore", "DET001,DET002,DET003,DET004"])
        assert rc == 0


def test_parse_error_is_reported(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n")
    findings = run_lint([bad], ALL_SCOPES)
    assert [f.code for f in findings] == ["LINT000"]


@pytest.mark.parametrize("fmt", ["human", "json"])
def test_findings_are_sorted(fmt):
    findings = run_lint([FIXTURES], ALL_SCOPES)
    keys = [(f.path, f.line, f.col, f.code) for f in findings]
    assert keys == sorted(keys)
