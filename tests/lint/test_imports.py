"""Static import graph: module naming, edges, reachability."""

from pathlib import Path

from repro.lint.imports import ModuleGraph, module_name_for

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src"


def test_module_name_for_package_member():
    assert module_name_for(SRC / "repro" / "exec" / "cache.py") == \
        "repro.exec.cache"
    assert module_name_for(SRC / "repro" / "__init__.py") == "repro"


def test_module_name_for_loose_file(tmp_path):
    loose = tmp_path / "standalone.py"
    loose.write_text("x = 1\n")
    assert module_name_for(loose) == "standalone"


def _graph(tmp_path, files):
    paths = []
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        paths.append(path)
    return ModuleGraph.build(paths)


def test_relative_import_in_plain_module(tmp_path):
    graph = _graph(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/a.py": "from .b import thing\n",
        "pkg/b.py": "thing = 1\n",
    })
    assert "pkg.b" in graph.reachable_from(["pkg.a"])


def test_relative_import_in_package_init(tmp_path):
    # Regression: ``from .log import X`` inside pkg/__init__.py targets
    # pkg.log, not the sibling of pkg.  Getting the level arithmetic
    # wrong silently drops pkg.log from every reachable set.
    graph = _graph(tmp_path, {
        "pkg/__init__.py": "from .log import Logger\n",
        "pkg/log.py": "class Logger: pass\n",
    })
    assert "pkg.log" in graph.reachable_from(["pkg"])


def test_two_level_relative_import(tmp_path):
    graph = _graph(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/util.py": "x = 1\n",
        "pkg/sub/__init__.py": "",
        "pkg/sub/mod.py": "from ..util import x\n",
    })
    assert "pkg.util" in graph.reachable_from(["pkg.sub.mod"])


def test_reachability_is_transitive_and_bounded(tmp_path):
    graph = _graph(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/root.py": "import pkg.mid\n",
        "pkg/mid.py": "from pkg import leaf\n",
        "pkg/leaf.py": "x = 1\n",
        "pkg/island.py": "y = 2\n",
    })
    reachable = graph.reachable_from(["pkg.root"])
    assert {"pkg.root", "pkg.mid", "pkg.leaf"} <= reachable
    assert "pkg.island" not in reachable


def test_real_tree_reaches_obs_log():
    # The observability log feeds the runner (and thus the cache
    # layer); the wall-clock rule must see it.  This held only after
    # the package-__init__ relative-import fix above.
    files = [p for p in (SRC / "repro").rglob("*.py")
             if "__pycache__" not in p.parts]
    graph = ModuleGraph.build(files)
    reachable = graph.reachable_from(
        ["repro.exec.cache", "repro.experiments.reporting"])
    assert "repro.exec.cache" in reachable
    assert "repro.obs.log" in reachable
    assert "repro.sched.schedule" in reachable
