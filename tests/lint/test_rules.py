"""Rule-family tests: each fixture reports exactly its markers.

Every violating line in ``tests/lint/fixtures/`` carries an
``# expect: CODE`` comment; the engine must report exactly those
``(line, code)`` pairs — nothing missing, nothing extra.  Each family
is run with ``--select`` scoped to its own codes so that e.g. the
``schedule_energy`` parameter names of the kernel fixture do not also
trip the unit-suffix rules.
"""

import pytest

from repro.lint import LintConfig, run_lint

from .conftest import FIXTURES, expected_markers

FAMILIES = {
    "det_violations.py": frozenset({"DET001", "DET002", "DET003",
                                    "DET004"}),
    "unit_violations.py": frozenset({"UNIT001", "UNIT002", "UNIT003"}),
    "kernel_violations.py": frozenset({"KER001", "KER002", "KER003"}),
    "conc_violations.py": frozenset({"CONC001", "CONC002", "CONC003",
                                     "CONC004"}),
    "res_violations.py": frozenset({"RES001"}),
    "unitflow_violations.py": frozenset({"UNIT003"}),
}


def reported(path, config):
    return sorted((f.line, f.code) for f in run_lint([path], config))


@pytest.mark.parametrize("fixture", sorted(FAMILIES))
def test_fixture_reports_exactly_the_markers(fixture):
    path = FIXTURES / fixture
    config = LintConfig(select=FAMILIES[fixture], all_scopes=True)
    assert reported(path, config) == expected_markers(path)


def test_clean_fixture_has_no_findings():
    config = LintConfig(all_scopes=True)
    assert run_lint([FIXTURES / "clean.py"], config) == []


def test_scoped_rules_skip_unreachable_modules():
    # Without --all-scopes the fixtures are outside the unit packages
    # and unreachable from the cache/report roots, so only the global
    # rules (DET001, KER00x) remain.
    findings = run_lint([FIXTURES / "det_violations.py"], LintConfig())
    codes = {f.code for f in findings}
    assert "DET001" in codes
    assert codes.isdisjoint({"DET002", "DET003", "DET004"})


def test_unit_rules_are_package_scoped():
    # UNIT001/UNIT002 (naming conventions) stay confined to the unit
    # packages; UNIT003 became a tree-wide dataflow rule — a mixed-unit
    # add is a bug wherever it happens — so it fires here regardless.
    findings = run_lint([FIXTURES / "unit_violations.py"], LintConfig())
    codes = {f.code for f in findings}
    assert not codes & {"UNIT001", "UNIT002"}
    assert "UNIT003" in codes


def test_plan_cache_module_is_kernel_owner(tmp_path):
    """``repro.core.plans`` may touch kernel internals; siblings may not.

    The plan cache memoizes built Schedules and replays audit hooks, so
    it joined ``_KERNEL_OWNERS``; the same code one module over must
    still be flagged.
    """
    body = ("def rebuild(s):\n"
            "    s._init_arrays()\n"
            "    s._starts = None\n")
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    (tmp_path / "repro" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    owner = pkg / "plans.py"
    owner.write_text(body)
    outsider = pkg / "helpers.py"
    outsider.write_text(body)
    config = LintConfig(select=frozenset({"KER001", "KER002"}),
                        all_scopes=True)
    assert run_lint([owner], config) == []
    assert {f.code for f in run_lint([outsider], config)} == \
        {"KER001", "KER002"}


def test_select_and_ignore():
    path = FIXTURES / "det_violations.py"
    only = LintConfig(select=frozenset({"DET001"}), all_scopes=True)
    assert {f.code for f in run_lint([path], only)} == {"DET001"}
    without = LintConfig(select=FAMILIES["det_violations.py"],
                         ignore=frozenset({"DET001"}), all_scopes=True)
    codes = {f.code for f in run_lint([path], without)}
    assert "DET001" not in codes and codes
