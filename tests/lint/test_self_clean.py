"""The codebase ships lint-clean: ``repro lint src/`` finds nothing."""

import subprocess
import sys
from pathlib import Path

from repro.lint import LintConfig, run_lint

REPO = Path(__file__).resolve().parents[2]


def test_src_tree_is_clean():
    findings = run_lint([REPO / "src"], LintConfig())
    assert findings == [], "\n".join(f.format() for f in findings)


def test_tools_wrapper_exits_zero():
    proc = subprocess.run(
        [sys.executable, str(REPO / "tools" / "lint.py"), "src"],
        cwd=REPO, capture_output=True, text=True)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean: no findings" in proc.stdout
