"""Tests for the trace/metrics exporters and stats aggregation."""

import json

import pytest

from repro.obs import ObsLog
from repro.obs.export import (
    aggregate_trace_events,
    chrome_trace,
    format_log_stats,
    format_stats,
    load_trace,
    metrics_jsonl,
    self_time_table,
    span_aggregates,
    write_chrome_trace,
    write_metrics_jsonl,
)
from repro.obs.log import SpanRecord


def _log_with_nested_spans():
    log = ObsLog()
    with log.span("outer", category="test", k=1):
        with log.span("inner", category="test"):
            pass
    log.count("widgets", 3)
    log.observe("lat", 0.5)
    return log


class TestChromeTrace:
    def test_schema(self):
        doc = chrome_trace(_log_with_nested_spans())
        assert isinstance(doc["traceEvents"], list)
        assert doc["displayTimeUnit"] == "ms"
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in xs} == {"outer", "inner"}
        for e in xs:
            assert set(e) >= {"name", "cat", "ph", "ts", "dur", "pid",
                              "tid"}
            assert e["ts"] >= 0.0 and e["dur"] >= 0.0

    def test_process_name_metadata(self):
        doc = chrome_trace(_log_with_nested_spans())
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert len(meta) == 1
        assert meta[0]["name"] == "process_name"
        assert meta[0]["args"]["name"] == "main"

    def test_worker_pids_get_labels(self):
        log = _log_with_nested_spans()
        main_pid = log.spans[0].pid
        worker_pid = main_pid + 1
        log.merge_dict({"spans": [
            SpanRecord("w", "", log.spans[0].start + 1.0, 0.5, 0.5,
                       worker_pid, 1, 0, None).to_list()],
            "counters": {}, "histograms": {}})
        doc = chrome_trace(log)
        meta = {e["pid"]: e["args"]["name"]
                for e in doc["traceEvents"] if e["ph"] == "M"}
        assert meta[main_pid] == "main"
        assert meta[worker_pid] == f"worker {worker_pid}"

    def test_timestamps_relative_to_earliest_span(self):
        doc = chrome_trace(_log_with_nested_spans())
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert min(e["ts"] for e in xs) == 0.0

    def test_repro_obs_block(self):
        doc = chrome_trace(_log_with_nested_spans())
        blk = doc["reproObs"]
        assert blk["counters"] == {"widgets": 3}
        assert blk["histograms"]["lat"]["count"] == 1
        assert set(blk["spanAggregates"]) == {"outer", "inner"}

    def test_write_and_load_roundtrip(self, tmp_path):
        path = write_chrome_trace(_log_with_nested_spans(),
                                  tmp_path / "t.json")
        events, blk = load_trace(path)
        assert {e["name"] for e in events if e["ph"] == "X"} == \
            {"outer", "inner"}
        assert blk["counters"] == {"widgets": 3}

    def test_load_bare_array_form(self, tmp_path):
        p = tmp_path / "bare.json"
        p.write_text(json.dumps([{"name": "a", "ph": "X", "ts": 0,
                                  "dur": 10, "pid": 1, "tid": 1}]))
        events, blk = load_trace(p)
        assert len(events) == 1 and blk is None

    def test_empty_log_is_valid(self):
        doc = chrome_trace(ObsLog())
        assert doc["traceEvents"] == []
        assert doc["reproObs"]["spanAggregates"] == {}


class TestAggregation:
    def test_span_aggregates(self):
        log = ObsLog()
        for _ in range(3):
            with log.span("s"):
                pass
        agg = span_aggregates(log)["s"]
        assert agg["calls"] == 3
        assert agg["total_s"] == pytest.approx(
            sum(s.duration for s in log.spans))
        assert agg["max_s"] == max(s.duration for s in log.spans)

    def test_aggregate_trace_events_matches_span_aggregates(self):
        log = _log_with_nested_spans()
        direct = span_aggregates(log)
        from_events = aggregate_trace_events(
            chrome_trace(log)["traceEvents"])
        assert set(direct) == set(from_events)
        for name in direct:
            assert from_events[name]["calls"] == direct[name]["calls"]
            assert from_events[name]["total_s"] == pytest.approx(
                direct[name]["total_s"], abs=1e-5)
            assert from_events[name]["self_s"] == pytest.approx(
                direct[name]["self_s"], abs=1e-5)

    def test_aggregate_hand_built_nesting(self):
        # parent [0, 100µs] with child [20, 60µs]: self = 60µs.
        events = [
            {"name": "parent", "ph": "X", "ts": 0.0, "dur": 100.0,
             "pid": 1, "tid": 1},
            {"name": "child", "ph": "X", "ts": 20.0, "dur": 40.0,
             "pid": 1, "tid": 1},
        ]
        agg = aggregate_trace_events(events)
        assert agg["parent"]["self_s"] == pytest.approx(60e-6)
        assert agg["child"]["self_s"] == pytest.approx(40e-6)

    def test_aggregate_separate_lanes_do_not_nest(self):
        # Same timestamps but different pids: no parent/child charge.
        events = [
            {"name": "a", "ph": "X", "ts": 0.0, "dur": 100.0,
             "pid": 1, "tid": 1},
            {"name": "b", "ph": "X", "ts": 10.0, "dur": 50.0,
             "pid": 2, "tid": 1},
        ]
        agg = aggregate_trace_events(events)
        assert agg["a"]["self_s"] == pytest.approx(100e-6)
        assert agg["b"]["self_s"] == pytest.approx(50e-6)

    def test_aggregate_skips_metadata_events(self):
        events = [{"name": "process_name", "ph": "M", "pid": 1,
                   "tid": 0, "args": {"name": "main"}}]
        assert aggregate_trace_events(events) == {}


class TestMetricsJsonl:
    def test_one_json_object_per_line(self, tmp_path):
        path = write_metrics_jsonl(_log_with_nested_spans(),
                                   tmp_path / "m.jsonl")
        lines = path.read_text().splitlines()
        records = [json.loads(ln) for ln in lines]
        kinds = {r["type"] for r in records}
        assert kinds == {"counter", "histogram", "span"}
        counter = next(r for r in records if r["type"] == "counter")
        assert counter == {"type": "counter", "name": "widgets",
                           "value": 3}

    def test_empty_log_yields_empty_string(self):
        assert metrics_jsonl(ObsLog()) == ""


class TestStatsTables:
    def test_self_time_table_sorted_heaviest_first(self):
        aggs = {
            "light": {"calls": 1, "total_s": 0.1, "self_s": 0.1,
                      "max_s": 0.1},
            "heavy": {"calls": 2, "total_s": 3.0, "self_s": 2.5,
                      "max_s": 2.0},
        }
        text = self_time_table(aggs)
        assert text.index("heavy") < text.index("light")
        assert "self %" in text

    def test_format_stats_includes_all_blocks(self):
        text = format_log_stats(_log_with_nested_spans())
        assert "Span self-time" in text
        assert "Counters" in text and "widgets" in text
        assert "Latency histograms" in text and "lat" in text

    def test_format_stats_empty(self):
        assert format_stats(aggregates={}) == "(no observations)"
