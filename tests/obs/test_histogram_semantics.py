"""Bucket semantics of the power-of-two Histogram.

These pin the properties the metrics layer builds on: an observation
``v > 0`` lands in bucket ``e = frexp(v)[1]`` covering
``[2**(e-1), 2**e)``; non-positive observations land in the UNDERFLOW
bucket; merge is associative and commutative on the exact fields.
"""

import math
import random

import pytest

from repro.obs import Histogram
from repro.obs.metrics import bucket_bounds, quantile_from_buckets


def _hist(values):
    h = Histogram()
    for v in values:
        h.observe(v)
    return h


class TestBucketPlacement:
    @pytest.mark.parametrize("value", [1e-6, 0.1, 0.5, 0.75, 1.5, 3.0,
                                       100.0])
    def test_observation_lands_inside_its_bounds(self, value):
        h = _hist([value])
        (exponent,) = h.buckets
        lo, hi = bucket_bounds(exponent)
        assert lo <= value < hi

    @pytest.mark.parametrize("exponent", [-3, 0, 1, 5])
    def test_exact_power_of_two_opens_the_next_bucket(self, exponent):
        """2**e is the *exclusive* top of bucket e — it lands in e+1."""
        value = 2.0 ** exponent
        h = _hist([value])
        assert set(h.buckets) == {exponent + 1}
        lo, hi = bucket_bounds(exponent + 1)
        assert lo == value and hi == 2.0 * value

    @pytest.mark.parametrize("value", [0.0, -1.0, -1e-9])
    def test_nonpositive_goes_to_underflow(self, value):
        h = _hist([value])
        assert set(h.buckets) == {Histogram.UNDERFLOW}
        assert bucket_bounds(Histogram.UNDERFLOW) == (0.0, 0.0)

    def test_adjacent_buckets_tile_the_line(self):
        for e in range(-10, 10):
            assert bucket_bounds(e)[1] == bucket_bounds(e + 1)[0]


class TestMergeAlgebra:
    def _assert_equal_exact(self, a, b):
        """Exact fields must match; ``total`` only approximately
        (float addition is not associative)."""
        assert a.count == b.count
        assert a.min == b.min
        assert a.max == b.max
        assert a.buckets == b.buckets
        assert a.total == pytest.approx(b.total)

    def test_merge_is_commutative(self):
        rng = random.Random(7)
        xs = [rng.uniform(0.0001, 10.0) for _ in range(50)]
        ys = [rng.uniform(0.0001, 10.0) for _ in range(50)]
        ab = _hist(xs)
        ab.merge(_hist(ys))
        ba = _hist(ys)
        ba.merge(_hist(xs))
        self._assert_equal_exact(ab, ba)

    def test_merge_is_associative(self):
        rng = random.Random(11)
        parts = [[rng.uniform(1e-4, 5.0) for _ in range(20)]
                 for _ in range(3)]
        left = _hist(parts[0])
        left.merge(_hist(parts[1]))
        left.merge(_hist(parts[2]))
        bc = _hist(parts[1])
        bc.merge(_hist(parts[2]))
        right = _hist(parts[0])
        right.merge(bc)
        self._assert_equal_exact(left, right)

    def test_merge_equals_direct_observation(self):
        rng = random.Random(13)
        values = [rng.uniform(1e-4, 8.0) for _ in range(100)]
        split = _hist(values[:40])
        split.merge(_hist(values[40:]))
        self._assert_equal_exact(split, _hist(values))

    def test_merge_accepts_wire_dicts(self):
        a = _hist([0.5, 1.5])
        b = _hist([0.1])
        a.merge(b.to_dict())
        assert a.count == 3
        assert a.min == 0.1

    def test_merging_empty_is_identity(self):
        a = _hist([0.5])
        before = (a.count, a.total, a.min, a.max, dict(a.buckets))
        a.merge(Histogram())
        assert (a.count, a.total, a.min, a.max, dict(a.buckets)) == before


class TestQuantileErrorBound:
    def test_estimate_within_bucket_of_truth(self):
        """For any positive sample set, the q-quantile estimate shares
        a bucket with the true rank statistic — relative error < 2x."""
        rng = random.Random(42)
        for trial in range(20):
            values = sorted(rng.uniform(1e-4, 50.0)
                            for _ in range(rng.randrange(1, 200)))
            h = _hist(values)
            for q in (0.01, 0.5, 0.9, 0.99, 1.0):
                estimate = quantile_from_buckets(h.buckets, q)
                rank = max(1, math.ceil(q * len(values)))
                true = values[rank - 1]
                assert 0.5 < estimate / true < 2.0, \
                    (trial, q, estimate, true)

    def test_underflow_only_estimates_zero(self):
        h = _hist([0.0, -1.0])
        assert quantile_from_buckets(h.buckets, 0.5) == 0.0
