"""The instrumented hot paths actually record into an ObsLog."""

import os

import pytest

from repro.core.lamps import lamps_search
from repro.core.sns import schedule_and_stretch
from repro.core.suite import paper_suite
from repro.exec.cache import ResultCache
from repro.exec.pool import run_instances
from repro.exec.runner import ExecOptions, evaluate_suite_instances
from repro.graphs.analysis import critical_path_length
from repro.graphs.generators import stg_random_graph
from repro.obs import ObsLog
from repro.sched.deadlines import task_deadlines
from repro.sched.list_scheduler import list_schedule


@pytest.fixture
def instance():
    g = stg_random_graph(30, 0).scaled(3.1e6)
    return g, 2.0 * critical_path_length(g)


class TestSchedulerInstrumentation:
    def test_list_schedule_records_span_and_counters(self, instance):
        g, deadline = instance
        log = ObsLog()
        list_schedule(g, 4, task_deadlines(g, deadline), obs=log)
        assert [s.name for s in log.spans] == ["sched.list_schedule"]
        assert log.spans[0].args == {"tasks": g.n, "procs": 4}
        assert log.counters["sched.schedules_built"] == 1
        assert log.counters["sched.tasks_dispatched"] == g.n


class TestSearchInstrumentation:
    def test_lamps_phases_and_counters(self, instance):
        g, deadline = instance
        log = ObsLog()
        lamps_search(g, deadline, obs=log)
        names = {s.name for s in log.spans}
        assert {"lamps.phase1", "lamps.phase2",
                "sched.list_schedule"} <= names
        assert log.counters["lamps.binary_search_iterations"] >= 1
        assert log.counters["core.operating_points_evaluated"] >= 1

    def test_sns_stretch_span(self, instance):
        g, deadline = instance
        log = ObsLog()
        schedule_and_stretch(g, deadline, obs=log)
        assert "sns.stretch" in {s.name for s in log.spans}

    def test_paper_suite_phase_spans(self, instance):
        g, deadline = instance
        log = ObsLog()
        paper_suite(g, deadline, obs=log)
        names = {s.name for s in log.spans}
        assert {"suite.paper_suite", "suite.sns_family",
                "suite.lamps_phase1", "suite.lamps_phase2",
                "suite.limits", "sched.list_schedule"} <= names
        # All phase spans nest under the suite span.
        top = [s for s in log.spans if s.depth == 0]
        assert [s.name for s in top] == ["suite.paper_suite"]

    def test_suite_counters_match_audit(self, instance):
        from repro.audit.report import AuditLog

        g, deadline = instance
        log, audit = ObsLog(), AuditLog(strict=True)
        paper_suite(g, deadline, obs=log, audit=audit)
        assert log.counters["sched.schedules_built"] == \
            audit.schedules_built
        assert log.counters["core.operating_points_evaluated"] == \
            audit.operating_points_evaluated


class TestCacheInstrumentation:
    def test_hit_miss_counters_and_latency(self, tmp_path):
        log = ObsLog()
        cache = ResultCache(tmp_path, obs=log)
        key = "ab" + "0" * 62
        assert cache.get(key) is None
        cache.put(key, [{"heuristic": "sns"}])
        assert cache.get(key) == [{"heuristic": "sns"}]
        assert log.counters == {"cache.misses": 1, "cache.hits": 1,
                                "cache.writes": 1}
        assert log.histograms["cache.get"].count == 2
        assert log.histograms["cache.put"].count == 1

    def test_obs_never_changes_payload(self, tmp_path):
        key = "cd" + "0" * 62
        plain = ResultCache(tmp_path / "a")
        observed = ResultCache(tmp_path / "b", obs=ObsLog())
        payload = [{"x": 1.5}]
        plain.put(key, payload)
        observed.put(key, payload)
        assert plain.path_for(key).read_bytes() == \
            observed.path_for(key).read_bytes()


# Pool workers must be module-level (picklable).
def _double(x):
    return 2 * x


class TestPoolInstrumentation:
    def test_serial_spans(self):
        log = ObsLog()
        run_instances(_double, [1, 2, 3], jobs=1, obs=log)
        names = [s.name for s in log.spans]
        assert names.count("exec.instance") == 3
        assert names.count("exec.run_instances") == 1
        assert log.counters["exec.instances_run"] == 3

    def test_parallel_merges_worker_pids(self):
        log = ObsLog()
        results = run_instances(_double, list(range(8)), jobs=2,
                                chunksize=2, obs=log)
        assert [r.value for r in results] == [2 * x for x in range(8)]
        pids = {s.pid for s in log.spans}
        # At least the coordinator plus one distinct worker pid.
        assert os.getpid() in pids
        assert len(pids) >= 2
        worker_spans = {s.name for s in log.spans
                        if s.pid != os.getpid()}
        assert {"exec.chunk", "exec.instance"} <= worker_spans
        assert log.counters["exec.instances_run"] == 8
        assert log.counters["exec.chunks_run"] == 4

    def test_no_obs_payload_without_profiling(self):
        results = run_instances(_double, [1, 2, 3, 4], jobs=2,
                                chunksize=2)
        assert all(r.obs is None for r in results)


class TestRunnerInstrumentation:
    def test_campaign_obs_and_timing_summary(self, instance):
        options = ExecOptions(jobs=1, profile=True)
        evaluate_suite_instances([instance], options=options)
        log = options.open_obs()
        names = {s.name for s in log.spans}
        assert {"exec.cache_lookup", "exec.run_instances",
                "suite.paper_suite"} <= names
        timing = options.timing_summary()
        assert timing is not None and "1 fresh" in timing

    def test_parallel_campaign_single_merged_log(self, instance):
        g, deadline = instance
        instances = [(g, f * deadline) for f in (1.0, 1.1, 1.2, 1.3)]
        options = ExecOptions(jobs=2, profile=True)
        evaluate_suite_instances(instances, options=options)
        log = options.open_obs()
        pids = {s.pid for s in log.spans}
        assert len(pids) >= 2  # coordinator + worker lanes in one log

    def test_timing_summary_none_when_idle(self):
        assert ExecOptions().timing_summary() is None
