"""Unit tests for the ObsLog core: spans, counters, histograms."""

import math
import pickle
import time

import pytest

from repro.obs import NULL_OBS, Histogram, NullObs, ObsLog, live
from repro.obs.log import SpanRecord


class TestSpans:
    def test_span_records_name_and_duration(self):
        log = ObsLog()
        with log.span("work", category="test"):
            time.sleep(0.01)
        assert len(log.spans) == 1
        s = log.spans[0]
        assert s.name == "work"
        assert s.category == "test"
        assert s.duration >= 0.01
        assert s.depth == 0

    def test_nesting_depth_and_self_time(self):
        log = ObsLog()
        with log.span("outer"):
            time.sleep(0.01)
            with log.span("inner"):
                time.sleep(0.02)
        # Spans close inner-first.
        inner, outer = log.spans
        assert inner.name == "inner" and inner.depth == 1
        assert outer.name == "outer" and outer.depth == 0
        # Outer's self time excludes the child's full duration.
        assert outer.duration >= inner.duration
        assert outer.self_time == pytest.approx(
            outer.duration - inner.duration, abs=1e-6)
        # A leaf's self time is its duration.
        assert inner.self_time == pytest.approx(inner.duration)

    def test_self_time_sums_multiple_children(self):
        log = ObsLog()
        with log.span("parent"):
            for _ in range(3):
                with log.span("child"):
                    time.sleep(0.005)
        parent = log.spans[-1]
        child_total = sum(s.duration for s in log.spans[:-1])
        assert parent.self_time == pytest.approx(
            parent.duration - child_total, abs=1e-6)

    def test_span_attrs_recorded(self):
        log = ObsLog()
        with log.span("s", category="c", tasks=7, graph="g"):
            pass
        assert log.spans[0].args == {"tasks": 7, "graph": "g"}

    def test_span_without_attrs_stores_none(self):
        log = ObsLog()
        with log.span("s"):
            pass
        assert log.spans[0].args is None

    def test_exception_still_records_span_and_propagates(self):
        log = ObsLog()
        with pytest.raises(RuntimeError, match="boom"):
            with log.span("failing"):
                raise RuntimeError("boom")
        assert [s.name for s in log.spans] == ["failing"]
        assert log._stack == []  # accumulator stack unwound cleanly

    def test_wall_clock_start_is_epoch(self):
        before = time.time()
        log = ObsLog()
        with log.span("s"):
            pass
        assert before <= log.spans[0].start <= time.time()


class TestCountersAndHistograms:
    def test_count_accumulates(self):
        log = ObsLog()
        log.count("x")
        log.count("x", 4)
        log.count("y")
        assert log.counters == {"x": 5, "y": 1}

    def test_observe_exact_stats(self):
        log = ObsLog()
        for v in (0.5, 1.5, 0.25):
            log.observe("lat", v)
        h = log.histograms["lat"]
        assert h.count == 3
        assert h.total == pytest.approx(2.25)
        assert h.min == 0.25
        assert h.max == 1.5
        assert h.mean == pytest.approx(0.75)

    def test_histogram_power_of_two_buckets(self):
        h = Histogram()
        h.observe(0.75)   # [0.5, 1) -> frexp exponent 0
        h.observe(0.6)    # same bucket
        h.observe(1.5)    # [1, 2)   -> exponent 1
        h.observe(0.0)    # underflow
        h.observe(-1.0)   # underflow
        assert h.buckets == {0: 2, 1: 1, Histogram.UNDERFLOW: 2}

    def test_histogram_merge_and_roundtrip(self):
        a, b = Histogram(), Histogram()
        a.observe(0.5)
        b.observe(2.0)
        b.observe(0.1)
        a.merge(b.to_dict())
        assert a.count == 3
        assert a.min == 0.1 and a.max == 2.0
        assert a.total == pytest.approx(2.6)
        # Merging an empty histogram is a no-op (min stays finite).
        a.merge(Histogram())
        assert a.count == 3 and a.min == 0.1

    def test_empty_histogram_dict_has_null_min(self):
        d = Histogram().to_dict()
        assert d["count"] == 0 and d["min"] is None


class TestMergeAndWireFormat:
    def test_to_dict_from_dict_roundtrip(self):
        log = ObsLog()
        with log.span("a", category="x", k=1):
            log.count("n", 2)
            log.observe("lat", 0.125)
        clone = ObsLog.from_dict(log.to_dict())
        assert [s.to_list() for s in clone.spans] == \
            [s.to_list() for s in log.spans]
        assert clone.counters == log.counters
        assert clone.histograms["lat"].to_dict() == \
            log.histograms["lat"].to_dict()

    def test_merge_preserves_worker_pid(self):
        parent = ObsLog()
        worker_payload = {
            "spans": [SpanRecord("w", "", 1.0, 0.5, 0.5, 9999, 1, 0,
                                 None).to_list()],
            "counters": {"c": 3},
            "histograms": {},
        }
        parent.merge_dict(worker_payload)
        assert parent.spans[0].pid == 9999
        assert parent.counters == {"c": 3}

    def test_merge_two_logs(self):
        a, b = ObsLog(), ObsLog()
        a.count("x")
        b.count("x", 2)
        with b.span("s"):
            pass
        b.observe("lat", 0.5)
        a.merge(b)
        assert a.counters == {"x": 3}
        assert len(a.spans) == 1
        assert a.histograms["lat"].count == 1

    def test_to_dict_is_json_and_picklable(self):
        import json

        log = ObsLog()
        with log.span("s", k="v"):
            pass
        log.count("c")
        log.observe("h", 0.25)
        payload = log.to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert pickle.loads(pickle.dumps(payload)) == payload

    def test_obslog_itself_is_picklable(self):
        log = ObsLog()
        with log.span("s"):
            pass
        clone = pickle.loads(pickle.dumps(log))
        assert clone.spans == log.spans

    def test_summary_line_mentions_totals(self):
        log = ObsLog()
        with log.span("s"):
            pass
        log.count("c")
        line = log.summary_line()
        assert "1 spans" in line and "1 counters" in line


class TestNullObs:
    def test_live_normalisation(self):
        log = ObsLog()
        assert live(log) is log
        assert live(None) is NULL_OBS

    def test_null_obs_is_inert(self):
        n = NullObs()
        with n.span("anything", category="x", k=1):
            pass
        n.count("c", 5)
        n.observe("h", 1.0)
        # Nothing to assert on state — NullObs has none (__slots__ = ()).
        assert not hasattr(n, "__dict__")

    def test_enabled_flags(self):
        assert ObsLog().enabled is True
        assert NULL_OBS.enabled is False

    def test_null_span_is_shared_singleton(self):
        a = NULL_OBS.span("a")
        b = NULL_OBS.span("b", category="c", k=1)
        assert a is b

    def test_null_obs_overhead_is_small(self):
        # Not a benchmark — just a sanity bound that the no-op path
        # stays allocation-free and far under any hot-loop budget.
        o = live(None)
        t0 = time.perf_counter()
        for _ in range(10_000):
            o.count("x")
        assert time.perf_counter() - t0 < 0.5


class TestFrexpBucketsMath:
    def test_bucket_semantics_match_docstring(self):
        # bucket e holds [2**(e-1), 2**e)
        for v, e in ((0.5, 0), (0.9999, 0), (1.0, 1), (1.9, 1),
                     (2.0, 2), (3.99, 2)):
            assert math.frexp(v)[1] == e, v
