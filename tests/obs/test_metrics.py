"""Unit tests for repro.obs.metrics: windows, quantiles, exposition."""

import math

import pytest

from repro.obs import ObsLog
from repro.obs.metrics import (
    WindowAggregator,
    histogram_quantiles,
    parse_prometheus,
    prometheus_name,
    quantile_from_buckets,
    render_prometheus,
    validate_exposition,
)


class TestQuantiles:
    def test_single_observation_estimate_inside_its_bucket(self):
        log = ObsLog()
        log.observe("h", 0.5)  # bucket [0.5, 1.0)
        estimate = quantile_from_buckets(log.histograms["h"].buckets, 0.5)
        assert 0.5 <= estimate < 1.0

    def test_relative_error_under_two(self):
        log = ObsLog()
        values = [0.001, 0.004, 0.01, 0.3, 0.5, 0.9, 1.5, 7.0]
        for v in values:
            log.observe("h", v)
        ordered = sorted(values)
        for q in (0.5, 0.9, 0.99):
            estimate = quantile_from_buckets(
                log.histograms["h"].buckets, q)
            rank = max(1, round(q * len(ordered)))
            true = ordered[rank - 1]
            assert estimate / true < 2.0
            assert true / estimate < 2.0

    def test_empty_buckets_are_zero(self):
        assert quantile_from_buckets({}, 0.5) == 0.0

    def test_out_of_range_quantile_raises(self):
        with pytest.raises(ValueError):
            quantile_from_buckets({1: 1}, 1.5)

    def test_histogram_quantiles_defaults(self):
        log = ObsLog()
        log.observe("h", 0.25)
        qs = histogram_quantiles(log.histograms["h"])
        assert set(qs) == {0.5, 0.9, 0.99}
        # 0.25 lands in bucket [0.25, 0.5); every estimate stays inside.
        assert all(0.25 <= v < 0.5 for v in qs.values())


class TestWindowAggregator:
    def test_rates_are_deltas_over_elapsed(self):
        log = ObsLog()
        window = WindowAggregator(log, window_seconds=60.0)
        window.sample(now=100.0)
        for _ in range(30):
            log.count("serve.requests")
        window.sample(now=110.0)
        assert window.rates()["serve.requests"] == pytest.approx(3.0)
        assert window.elapsed_seconds() == pytest.approx(10.0)

    def test_window_forgets_old_samples(self):
        log = ObsLog()
        window = WindowAggregator(log, window_seconds=10.0,
                                  max_samples=100)
        window.sample(now=0.0)
        for _ in range(1000):
            log.count("c")
        window.sample(now=1.0)  # burst happened here
        for t in range(2, 20):
            window.sample(now=float(t))
        # The burst is now outside the 10 s window: rate ~ 0.
        assert window.rates()["c"] == pytest.approx(0.0)

    def test_sample_count_is_bounded(self):
        log = ObsLog()
        window = WindowAggregator(log, window_seconds=60.0,
                                  max_samples=8)
        for t in range(1000):
            window.sample(now=float(t) * 100.0)
        assert window.samples_retained <= 8

    def test_rapid_samples_coalesce(self):
        log = ObsLog()
        window = WindowAggregator(log, window_seconds=60.0,
                                  max_samples=60)  # min spacing 1 s
        for i in range(100):
            window.sample(now=10.0 + i * 0.001)
        assert window.samples_retained == 1

    def test_quantiles_are_window_local(self):
        log = ObsLog()
        window = WindowAggregator(log, window_seconds=60.0)
        for _ in range(100):
            log.observe("lat", 4.0)  # slow history
        window.sample(now=0.0)
        for _ in range(100):
            log.observe("lat", 0.01)  # fast window
        window.sample(now=10.0)
        p50 = window.quantiles("lat")[0.5]
        assert p50 < 0.02  # sees only the fast observations
        # Since-boot estimate would have straddled both populations.
        boot = histogram_quantiles(log.histograms["lat"])[0.5]
        assert boot > p50

    def test_before_two_samples_falls_back_to_boot(self):
        log = ObsLog()
        log.observe("lat", 0.5)
        window = WindowAggregator(log)
        assert window.rates() == {}
        assert window.elapsed_seconds() == 0.0
        # Quantiles fall back to the since-boot shape.
        assert 0.25 <= window.quantiles("lat")[0.5] < 1.0

    def test_document_shape(self):
        log = ObsLog()
        log.count("serve.requests")
        log.observe("serve.request", 0.01)
        window = WindowAggregator(log, window_seconds=30.0)
        window.sample(now=0.0)
        window.sample(now=5.0)
        doc = window.document()
        assert doc["window_seconds"] == 30.0
        assert doc["elapsed_seconds"] == pytest.approx(5.0)
        assert "serve.requests" in doc["rates_per_second"]
        entry = doc["latency"]["serve.request"]
        assert set(entry) == {"count", "total_seconds", "p50_seconds",
                              "p90_seconds", "p99_seconds"}
        # Everything in the document is finite and JSON-safe.
        for value in entry.values():
            assert math.isfinite(value)

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            WindowAggregator(ObsLog(), window_seconds=0.0)


class TestExposition:
    def _busy_log(self):
        log = ObsLog()
        for _ in range(5):
            log.count("serve.requests")
        log.count("exec.cache.hits")
        for v in (0.001, 0.01, 0.2, 1.5):
            log.observe("serve.request", v)
        log.observe("serve.request", 0.0)  # underflow bucket
        return log

    def test_render_validates_clean(self):
        text = render_prometheus(
            self._busy_log(),
            gauges={"serve.inflight_requests": 2},
            extra_counters={"serve.admitted": 5})
        assert validate_exposition(text) == []

    def test_roundtrip_counters(self):
        text = render_prometheus(self._busy_log())
        families = parse_prometheus(text)
        fam = families["repro_serve_requests_total"]
        assert fam["type"] == "counter"
        assert fam["samples"] == [
            ("repro_serve_requests_total", {}, 5.0)]

    def test_histogram_buckets_cumulative_with_underflow(self):
        text = render_prometheus(self._busy_log())
        fam = parse_prometheus(text)["repro_serve_request_seconds"]
        buckets = {labels["le"]: value
                   for metric, labels, value in fam["samples"]
                   if metric.endswith("_bucket")}
        assert buckets["+Inf"] == 5.0
        finite = sorted(((float(le), n) for le, n in buckets.items()
                         if le != "+Inf"))
        counts = [n for _, n in finite]
        assert counts == sorted(counts)  # cumulative
        # The 0.0 underflow observation is <= every finite bound.
        assert counts[0] >= 1

    def test_empty_histogram_never_emits_nonfinite(self):
        """An un-observed histogram (min == math.inf in-process) must
        still render a finite, valid family."""
        log = ObsLog()
        log.observe("once", 1.0)
        hist = log.histograms["once"]
        hist.count = 0
        hist.total = 0.0
        hist.min = math.inf
        hist.buckets.clear()
        text = render_prometheus(log)
        assert "inf" not in text.lower().replace("+inf", "")
        assert validate_exposition(text) == []

    def test_nonfinite_gauges_are_skipped(self):
        log = ObsLog()
        log.count("c")
        text = render_prometheus(
            log, gauges={"bad": math.inf, "worse": math.nan, "ok": 3.0})
        assert "bad" not in text and "worse" not in text
        assert "repro_ok 3.0" in text
        assert validate_exposition(text) == []

    def test_window_section_renders(self):
        log = self._busy_log()
        window = WindowAggregator(log, window_seconds=60.0)
        window.sample(now=0.0)
        log.count("serve.requests")
        log.observe("serve.request", 0.05)
        window.sample(now=10.0)
        text = render_prometheus(log, window=window)
        assert validate_exposition(text) == []
        families = parse_prometheus(text)
        rates = {labels["name"]: value for _m, labels, value in
                 families["repro_window_rate_per_second"]["samples"]}
        assert rates["serve.requests"] == pytest.approx(0.1)
        quantiles = families["repro_window_latency_seconds"]["samples"]
        assert any(labels == {"name": "serve.request",
                              "quantile": "0.5"}
                   for _m, labels, _v in quantiles)

    def test_prometheus_name_sanitizes(self):
        assert prometheus_name("serve.warm_hits") == \
            "repro_serve_warm_hits"
        assert prometheus_name("a-b c", namespace="") == "a_b_c"

    def test_validator_catches_noncumulative_buckets(self):
        bad = (
            "# TYPE x histogram\n"
            'x_bucket{le="0.5"} 5\n'
            'x_bucket{le="1.0"} 3\n'
            'x_bucket{le="+Inf"} 5\n'
            "x_sum 1.0\n"
            "x_count 5\n")
        assert any("non-cumulative" in f
                   for f in validate_exposition(bad))

    def test_validator_catches_missing_inf_and_count(self):
        bad = ("# TYPE x histogram\n"
               'x_bucket{le="1.0"} 1\n'
               "x_sum 0.5\n")
        failures = validate_exposition(bad)
        assert any("+Inf" in f for f in failures)
        assert any("_count" in f for f in failures)

    def test_validator_requires_total_suffix_and_newline(self):
        bad = "# TYPE repro_requests counter\nrepro_requests 5"
        failures = validate_exposition(bad)
        assert any("_total" in f for f in failures)
        assert any("newline" in f for f in failures)
