"""Profiling is a provable no-op on results — the acceptance bar.

Runs the same small campaign serial, parallel, and parallel-with-
profiling and asserts the report JSON is byte-identical and the cache
directories hold byte-identical files, while the profiled run still
produced a non-trivial merged ObsLog.
"""

import json

import pytest

from repro.exec import ExecOptions
from repro.experiments import fig10_11_relative_energy
from repro.experiments.registry import COARSE


def _campaign(exec_options=None):
    return fig10_11_relative_energy.run(
        scenario=COARSE, graphs_per_group=2, sizes=(50,),
        deadline_factors=(1.5, 2.0), include_applications=False,
        exec_options=exec_options)


def _cache_snapshot(root):
    """{relative path: bytes} of every cache entry under ``root``."""
    return {str(p.relative_to(root)): p.read_bytes()
            for p in sorted(root.rglob("*.json"))}


@pytest.fixture(scope="module")
def baseline_report():
    return _campaign(ExecOptions(jobs=1, use_cache=False))


def test_profiled_serial_equals_baseline(baseline_report):
    options = ExecOptions(jobs=1, use_cache=False, profile=True)
    profiled = _campaign(options)
    assert profiled.to_json() == baseline_report.to_json()
    log = options.open_obs()
    assert log.spans and log.counters  # profiling actually happened


def test_profiled_parallel_equals_baseline(baseline_report):
    options = ExecOptions(jobs=4, use_cache=False, profile=True)
    profiled = _campaign(options)
    assert json.loads(profiled.to_json()) == \
        json.loads(baseline_report.to_json())
    assert profiled.to_json() == baseline_report.to_json()
    # The merged log carries coordinator *and* worker lanes.
    pids = {s.pid for s in options.open_obs().spans}
    assert len(pids) >= 2


def test_cache_bytes_identical_with_and_without_profiling(tmp_path):
    plain_dir = tmp_path / "plain"
    prof_dir = tmp_path / "profiled"
    _campaign(ExecOptions(jobs=2, cache_dir=plain_dir))
    _campaign(ExecOptions(jobs=2, cache_dir=prof_dir, profile=True))
    plain = _cache_snapshot(plain_dir)
    profiled = _cache_snapshot(prof_dir)
    assert plain  # the campaign did populate the cache
    assert plain == profiled


def test_profiled_warm_cache_equals_baseline(baseline_report, tmp_path):
    cache_dir = tmp_path / "cache"
    _campaign(ExecOptions(jobs=2, cache_dir=cache_dir))  # populate
    options = ExecOptions(jobs=2, cache_dir=cache_dir, profile=True)
    warm = _campaign(options)
    assert warm.to_json() == baseline_report.to_json()
    log = options.open_obs()
    # Warm run is all hits; the cache instrumentation saw them.
    assert log.counters.get("cache.hits", 0) > 0
    assert log.histograms["cache.get"].count == \
        options.open_cache().stats.lookups
