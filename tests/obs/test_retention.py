"""Bounded span retention: the ObsLog(max_spans=N) ring.

The since-boot contract says counters and histograms grow forever (they
are bounded by *name* count), but spans are per-event and unbounded —
a week of ``repro serve`` would OOM a campaign-sized span list.  The
``max_spans`` bound caps retention while folding every evicted span
into per-name aggregates, so totals stay exact.
"""

import math

from repro.obs import ObsLog
from repro.obs.export import format_log_stats, span_aggregates
from repro.obs.log import SpanRecord


def _span(name, duration=0.5, depth=0):
    return SpanRecord(name=name, category="t", start=0.0,
                      duration=duration, self_time=duration,
                      pid=1, tid=1, depth=depth)


class TestBound:
    def test_retention_never_exceeds_bound(self):
        log = ObsLog(max_spans=8)
        for i in range(50):
            log.spans.append(_span(f"s{i % 3}"))
        assert len(log.spans) == 8
        assert log.evicted_spans == 42

    def test_newest_spans_survive(self):
        log = ObsLog(max_spans=4)
        for i in range(10):
            log.spans.append(_span(f"s{i}"))
        assert [s.name for s in log.spans] == ["s6", "s7", "s8", "s9"]

    def test_span_context_manager_respects_bound(self):
        log = ObsLog(max_spans=3)
        for _ in range(10):
            with log.span("work", category="test"):
                pass
        assert len(log.spans) == 3
        assert log.evicted_spans == 7

    def test_unbounded_default_is_plain_list_semantics(self):
        log = ObsLog()
        for i in range(100):
            log.spans.append(_span(f"s{i}"))
        assert len(log.spans) == 100
        assert log.evicted_spans == 0
        assert log.evicted_aggregates == {}


class TestEvictedAggregates:
    def test_aggregates_are_exact(self):
        log = ObsLog(max_spans=2)
        for _ in range(5):
            log.spans.append(_span("a", duration=0.25))
        log.spans.append(_span("b", duration=1.0))
        # The bound held the last two ("a", "b"); four "a" were evicted.
        agg = log.evicted_aggregates["a"]
        assert agg["calls"] == 4
        assert math.isclose(agg["total_s"], 1.0)
        assert agg["max_s"] == 0.25
        assert "b" not in log.evicted_aggregates

    def test_totals_survive_eviction(self):
        """Retained + evicted aggregates == what an unbounded log sees."""
        bounded = ObsLog(max_spans=4)
        unbounded = ObsLog()
        for i in range(40):
            record = _span(f"s{i % 2}", duration=0.1 * (i % 5 + 1))
            bounded.spans.append(record)
            unbounded.spans.append(record)
        full = span_aggregates(unbounded)
        folded = span_aggregates(bounded)
        for name, want in full.items():
            got = folded[name]
            assert got["calls"] == want["calls"]
            assert math.isclose(got["total_s"], want["total_s"])
            assert math.isclose(got["max_s"], want["max_s"])

    def test_wire_format_only_grows_when_evicting(self):
        clean = ObsLog(max_spans=10)
        clean.spans.append(_span("a"))
        payload = clean.to_dict()
        assert "evicted_spans" not in payload
        assert "evicted_aggregates" not in payload

        dirty = ObsLog(max_spans=1)
        dirty.spans.append(_span("a"))
        dirty.spans.append(_span("a"))
        payload = dirty.to_dict()
        assert payload["evicted_spans"] == 1
        assert "a" in payload["evicted_aggregates"]

    def test_merge_roundtrip_preserves_evictions(self):
        worker = ObsLog(max_spans=2)
        for _ in range(6):
            worker.spans.append(_span("w", duration=0.5))
        parent = ObsLog()
        parent.merge_dict(worker.to_dict())
        assert parent.evicted_spans == 4
        assert parent.evicted_aggregates["w"]["calls"] == 4
        agg = span_aggregates(parent)
        assert agg["w"]["calls"] == 6

    def test_merging_into_bounded_parent_keeps_bound(self):
        parent = ObsLog(max_spans=3)
        worker = ObsLog()
        for i in range(10):
            worker.spans.append(_span("w"))
        parent.merge_dict(worker.to_dict())
        assert len(parent.spans) == 3
        assert parent.evicted_spans == 7

    def test_summary_line_reports_evictions(self):
        log = ObsLog(max_spans=1)
        log.spans.append(_span("a"))
        log.spans.append(_span("a"))
        assert "evicted" in log.summary_line()
        stats = format_log_stats(log)
        assert "a" in stats
