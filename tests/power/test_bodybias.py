"""Tests for adaptive body biasing (DVS+ABB extension)."""

import numpy as np
import pytest

from repro.power.bodybias import ABBLadder, optimal_body_bias
from repro.power.dvs import DVSLadder
from repro.power.model import PowerModel
from repro.power.technology import TECH_70NM


class TestModelWithVbs:
    def test_default_vbs_matches_fixed(self):
        m = PowerModel()
        assert m.frequency(0.8) == m.frequency(0.8, TECH_70NM.vbs)
        assert m.static_power(0.8) == m.static_power(0.8, TECH_70NM.vbs)

    def test_deeper_bias_raises_threshold(self):
        m = PowerModel()
        assert m.threshold_voltage(0.8, -1.0) > \
            m.threshold_voltage(0.8, -0.5)

    def test_deeper_bias_cuts_subthreshold_leakage(self):
        m = PowerModel()
        assert m.subthreshold_current(0.8, -1.0) < \
            m.subthreshold_current(0.8, -0.5)

    def test_deeper_bias_slows_the_device(self):
        m = PowerModel()
        assert m.frequency(0.8, -1.0) < m.frequency(0.8, -0.3)

    def test_vectorized_vbs(self):
        m = PowerModel()
        out = m.frequency(np.array([0.8, 0.8]), np.array([-0.7, -1.0]))
        assert out[0] > out[1]


class TestOptimalBodyBias:
    def test_within_grid(self):
        vbs = optimal_body_bias(TECH_70NM, 0.7)
        assert -1.0 <= vbs <= 0.0

    def test_minimises_energy_on_grid(self):
        m = PowerModel()
        vdd = 0.7
        best = optimal_body_bias(TECH_70NM, vdd, vbs_step=0.1)
        grid = np.arange(-1.0, 0.01, 0.1)
        feasible = [b for b in grid if m.frequency(vdd, b) > 0]
        energies = {b: m.energy_per_cycle(vdd, b) for b in feasible}
        assert m.energy_per_cycle(vdd, best) == min(energies.values())

    def test_performance_floor_respected(self):
        m = PowerModel()
        vdd = 0.8
        floor = float(m.frequency(vdd))  # the fixed-bias speed
        vbs = optimal_body_bias(TECH_70NM, vdd, min_frequency_hz=floor)
        assert m.frequency(vdd, vbs) >= floor * (1 - 1e-9)

    def test_impossible_floor_raises(self):
        with pytest.raises(ValueError, match="no feasible"):
            optimal_body_bias(TECH_70NM, 0.5, min_frequency_hz=1e12)

    def test_bad_grid_raises(self):
        with pytest.raises(ValueError):
            optimal_body_bias(TECH_70NM, 0.7, vbs_min=0.0, vbs_max=-1.0)
        with pytest.raises(ValueError):
            optimal_body_bias(TECH_70NM, 0.7, vbs_step=0.0)


class TestABBLadder:
    def test_beats_fixed_bias_at_critical_point(self):
        abb = ABBLadder()
        fixed = DVSLadder()
        assert abb.critical_point().energy_per_cycle < \
            fixed.critical_point().energy_per_cycle

    def test_reaches_lower_supplies_than_fixed(self):
        # Forward bias (vbs -> 0) keeps the device conducting at
        # supplies where the fixed -0.7 V bias cannot.
        abb = ABBLadder()
        fixed = DVSLadder()
        assert min(p.vdd for p in abb) < min(p.vdd for p in fixed)

    def test_points_carry_their_bias(self):
        abb = ABBLadder()
        assert any(p.vbs != TECH_70NM.vbs for p in abb)

    def test_frequency_sorted(self):
        abb = ABBLadder()
        freqs = [p.frequency for p in abb]
        assert freqs == sorted(freqs)

    def test_ladder_interface_works(self):
        abb = ABBLadder()
        p = abb.slowest_at_least(0.5 * abb.fmax)
        assert p.frequency >= 0.5 * abb.fmax
        assert abb.best_point(0.0) is abb.critical_point()

    def test_performance_neutral_keeps_fixed_fmax(self):
        abb = ABBLadder(performance_neutral=True)
        fixed = DVSLadder()
        assert abb.fmax >= fixed.fmax * (1 - 1e-9)

    def test_performance_neutral_never_worse_per_supply(self):
        m = PowerModel()
        abb = ABBLadder(performance_neutral=True)
        for p in abb:
            assert p.energy_per_cycle <= \
                m.energy_per_cycle(p.vdd) * (1 + 1e-12)

    def test_bad_step_raises(self):
        with pytest.raises(ValueError):
            ABBLadder(vdd_step=-0.1)
