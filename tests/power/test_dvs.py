"""Tests for the discrete DVS ladder."""

import numpy as np
import pytest

from repro.power.dvs import DVSLadder, continuous_critical_frequency
from repro.power.model import PowerModel
from repro.power.technology import TECH_70NM


@pytest.fixture(scope="module")
def lad():
    return DVSLadder()


class TestConstruction:
    def test_default_has_14_points(self, lad):
        # 1.0 V down to 0.35 V in 0.05 V steps (0.30 V has f = 0).
        assert len(lad) == 14

    def test_points_ascend_in_frequency(self, lad):
        freqs = [p.frequency for p in lad]
        assert freqs == sorted(freqs)
        assert freqs[0] > 0

    def test_voltages_are_multiples_of_step(self, lad):
        for p in lad:
            steps = (TECH_70NM.vdd0 - p.vdd) / 0.05
            assert steps == pytest.approx(round(steps), abs=1e-9)

    def test_max_point_is_nominal_voltage(self, lad):
        assert lad.max_point.vdd == pytest.approx(1.0)
        assert lad.fmax == pytest.approx(3.1e9, rel=0.01)

    def test_indexing_and_iteration(self, lad):
        assert lad[-1] is lad.max_point
        assert list(lad)[0].frequency == lad.fmin

    def test_custom_step(self):
        fine = DVSLadder(vdd_step=0.01)
        assert len(fine) > len(DVSLadder())

    def test_bad_step_raises(self):
        with pytest.raises(ValueError, match="positive"):
            DVSLadder(vdd_step=0.0)

    def test_custom_vdd_max(self):
        lad = DVSLadder(vdd_max=0.8)
        assert lad.max_point.vdd == pytest.approx(0.8)

    def test_points_precompute_power(self, lad):
        model = PowerModel()
        p = lad[5]
        assert p.active_power == pytest.approx(model.active_power(p.vdd))
        assert p.idle_power == pytest.approx(model.idle_power(p.vdd))
        assert p.energy_per_cycle == pytest.approx(
            p.active_power / p.frequency)


class TestCriticalPoint:
    def test_discrete_critical_vdd_is_0_7(self, lad):
        # Paper: "the critical frequency is reached at a supply voltage
        # of 0.7 V, corresponding to a normalized frequency of 0.41".
        crit = lad.critical_point()
        assert crit.vdd == pytest.approx(0.7)
        assert lad.normalized(crit) == pytest.approx(0.41, abs=0.005)

    def test_continuous_critical_is_0_38(self):
        f_crit = continuous_critical_frequency()
        fmax = PowerModel().max_frequency
        assert f_crit / fmax == pytest.approx(0.38, abs=0.005)

    def test_critical_is_global_minimum(self, lad):
        crit = lad.critical_point()
        assert all(crit.energy_per_cycle <= p.energy_per_cycle for p in lad)


class TestQueries:
    def test_slowest_at_least_exact_hit(self, lad):
        p = lad[3]
        assert lad.slowest_at_least(p.frequency) is p

    def test_slowest_at_least_between_points(self, lad):
        f = 0.5 * (lad[3].frequency + lad[4].frequency)
        assert lad.slowest_at_least(f) is lad[4]

    def test_slowest_at_least_zero_gives_fmin(self, lad):
        assert lad.slowest_at_least(0.0) is lad[0]

    def test_slowest_at_least_above_fmax_raises(self, lad):
        with pytest.raises(ValueError, match="exceeds"):
            lad.slowest_at_least(lad.fmax * 1.01)

    def test_at_or_above_returns_suffix(self, lad):
        pts = lad.at_or_above(lad[5].frequency)
        assert pts == tuple(lad)[5:]

    def test_at_or_above_empty_when_impossible(self, lad):
        assert lad.at_or_above(lad.fmax * 2) == ()

    def test_best_point_prefers_critical_when_feasible(self, lad):
        crit = lad.critical_point()
        assert lad.best_point(0.0) is crit
        assert lad.best_point(crit.frequency) is crit

    def test_best_point_falls_back_to_slowest_feasible(self, lad):
        crit = lad.critical_point()
        f = crit.frequency * 1.5
        best = lad.best_point(f)
        assert best.frequency >= f
        assert best is lad.slowest_at_least(f)

    def test_normalized_of_max_is_one(self, lad):
        assert lad.normalized(lad.max_point) == pytest.approx(1.0)


class TestOperatingPointType:
    def test_ordering_by_frequency(self, lad):
        assert lad[0] < lad[1]

    def test_frozen(self, lad):
        with pytest.raises(AttributeError):
            lad[0].vdd = 0.9  # type: ignore[misc]

    def test_normalized_property_requires_ladder(self, lad):
        with pytest.raises(AttributeError, match="fmax"):
            _ = lad[0].normalized


class TestMonotonicity:
    def test_energy_per_cycle_unimodal(self, lad):
        e = np.array([p.energy_per_cycle for p in lad])
        k = int(np.argmin(e))
        assert np.all(np.diff(e[: k + 1]) <= 0)
        assert np.all(np.diff(e[k:]) >= 0)

    def test_idle_power_increases_with_frequency(self, lad):
        idle = [p.idle_power for p in lad]
        assert idle == sorted(idle)
