"""Tests for the analytic power model against the paper's anchors."""

import numpy as np
import pytest

from repro.power.model import PowerModel
from repro.power.technology import TECH_70NM


@pytest.fixture(scope="module")
def m():
    return PowerModel()


class TestFrequency:
    def test_max_frequency_is_3_1_ghz(self, m):
        # Paper: "The maximum frequency of this processor is 3.1 GHz,
        # which requires a supply voltage of 1 V."
        assert m.max_frequency == pytest.approx(3.1e9, rel=0.01)

    def test_frequency_monotone_in_vdd(self, m):
        v = np.linspace(TECH_70NM.min_vdd + 1e-3, 1.0, 50)
        f = m.frequency(v)
        assert np.all(np.diff(f) > 0)

    def test_zero_below_conduction_threshold(self, m):
        assert m.frequency(TECH_70NM.min_vdd) == 0.0
        assert m.frequency(0.1) == 0.0

    def test_scalar_in_scalar_out(self, m):
        assert isinstance(m.frequency(0.8), float)

    def test_array_in_array_out(self, m):
        out = m.frequency(np.array([0.7, 0.8]))
        assert isinstance(out, np.ndarray) and out.shape == (2,)

    def test_normalized_at_vdd0_is_one(self, m):
        assert m.normalized_frequency(1.0) == pytest.approx(1.0)

    def test_normalized_at_0_7v_is_0_41(self, m):
        # The paper's discrete critical point anchor.
        assert m.normalized_frequency(0.7) == pytest.approx(0.41, abs=0.005)


class TestThresholdVoltage:
    def test_linear_formula(self, m):
        t = TECH_70NM
        for vdd in (0.5, 0.7, 1.0):
            expect = t.vth1 - t.k1 * vdd - t.k2 * t.vbs
            assert m.threshold_voltage(vdd) == pytest.approx(expect)

    def test_decreases_with_vdd(self, m):
        assert m.threshold_voltage(1.0) < m.threshold_voltage(0.5)


class TestPowerComponents:
    def test_dynamic_power_formula(self, m):
        t = TECH_70NM
        vdd = 0.9
        f = m.frequency(vdd)
        assert m.dynamic_power(vdd) == pytest.approx(
            t.activity * t.c_eff * vdd**2 * f)

    def test_static_power_scale(self, m):
        # P_DC at 1.0 V is ~0.7 W (comparable to P_AC, per Fig. 2a).
        assert 0.5 < m.static_power(1.0) < 1.0

    def test_static_power_positive_at_low_vdd(self, m):
        assert m.static_power(0.4) > 0

    def test_active_power_is_sum(self, m):
        vdd = 0.75
        total = (m.dynamic_power(vdd) + m.static_power(vdd)
                 + TECH_70NM.p_on)
        assert m.active_power(vdd) == pytest.approx(total)

    def test_idle_power_excludes_dynamic(self, m):
        vdd = 0.8
        assert m.idle_power(vdd) == pytest.approx(
            m.static_power(vdd) + TECH_70NM.p_on)
        assert m.idle_power(vdd) < m.active_power(vdd)

    def test_full_speed_power_magnitude(self, m):
        # Fig. 2a: total power at f_max is a bit over 2 W.
        assert 1.8 < m.active_power(1.0) < 2.5

    def test_on_power_property(self, m):
        assert m.on_power == TECH_70NM.p_on


class TestEnergyPerCycle:
    def test_value_at_full_speed(self, m):
        # ~0.69 nJ/cycle at f_max with these constants.
        assert m.energy_per_cycle(1.0) == pytest.approx(6.94e-10, rel=0.02)

    def test_minimum_is_below_full_speed_value(self, m):
        # Scaling down saves energy per cycle until the critical point.
        assert m.energy_per_cycle(0.7) < m.energy_per_cycle(1.0)

    def test_increases_again_at_very_low_vdd(self, m):
        # Below the critical voltage leakage dominates.
        assert m.energy_per_cycle(0.4) > m.energy_per_cycle(0.7)

    def test_infinite_at_zero_frequency(self, m):
        assert m.energy_per_cycle(TECH_70NM.min_vdd) == np.inf

    def test_active_energy_scales_with_cycles(self, m):
        assert m.active_energy(0.8, 2e9) == pytest.approx(
            2 * m.active_energy(0.8, 1e9))

    def test_active_energy_scalar(self, m):
        assert isinstance(m.active_energy(0.8, 1e6), float)


class TestVddForFrequency:
    def test_roundtrip(self, m):
        for frac in (0.2, 0.5, 0.9, 1.0):
            f = frac * m.max_frequency
            vdd = m.vdd_for_frequency(f)
            assert m.frequency(vdd) >= f
            assert m.frequency(vdd) == pytest.approx(f, rel=1e-6)

    def test_half_speed_voltage(self, m):
        # Derived by hand from the alpha-power law: ~0.752 V.
        assert m.vdd_for_frequency(0.5 * m.max_frequency) == pytest.approx(
            0.752, abs=0.002)

    def test_zero_frequency_gives_floor(self, m):
        assert m.vdd_for_frequency(0.0) == pytest.approx(TECH_70NM.min_vdd)

    def test_negative_frequency_raises(self, m):
        with pytest.raises(ValueError, match="non-negative"):
            m.vdd_for_frequency(-1.0)

    def test_above_max_is_allowed_extrapolation(self, m):
        # No upper clamp: overclocking voltages are returned as-is.
        vdd = m.vdd_for_frequency(1.2 * m.max_frequency)
        assert vdd > 1.0


class TestSubthresholdCurrent:
    def test_exponential_in_vdd(self, m):
        t = TECH_70NM
        i1, i2 = m.subthreshold_current(0.5), m.subthreshold_current(0.7)
        assert i2 / i1 == pytest.approx(np.exp(t.k4 * 0.2), rel=1e-9)

    def test_magnitude(self, m):
        # Per-gate current at 1 V is ~0.18 µA with these constants.
        assert m.subthreshold_current(1.0) == pytest.approx(1.79e-7,
                                                            rel=0.02)


class TestCustomTechnology:
    def test_leakier_process_has_higher_idle_power(self):
        leaky = PowerModel(TECH_70NM.with_overrides(l_g=8.0e6))
        base = PowerModel()
        assert leaky.idle_power(0.8) > base.idle_power(0.8)

    def test_activity_scales_dynamic_only(self):
        half = PowerModel(TECH_70NM.with_overrides(activity=0.5))
        base = PowerModel()
        assert half.dynamic_power(0.9) == pytest.approx(
            0.5 * base.dynamic_power(0.9))
        assert half.static_power(0.9) == pytest.approx(
            base.static_power(0.9))
