"""Tests for the deep-sleep / shutdown cost model."""

import numpy as np
import pytest

from repro.power.dvs import DVSLadder
from repro.power.model import PowerModel
from repro.power.shutdown import DEFAULT_SLEEP, SleepModel


class TestDefaults:
    def test_paper_parameters(self):
        assert DEFAULT_SLEEP.sleep_power == pytest.approx(50e-6)
        assert DEFAULT_SLEEP.overhead_energy == pytest.approx(483e-6)

    def test_negative_sleep_power_rejected(self):
        with pytest.raises(ValueError, match="sleep_power"):
            SleepModel(sleep_power=-1.0)

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError, match="overhead_energy"):
            SleepModel(overhead_energy=-1.0)


class TestBreakeven:
    def test_formula(self):
        s = DEFAULT_SLEEP
        p_idle = 0.5
        expect = s.overhead_energy / (p_idle - s.sleep_power)
        assert s.breakeven_time(p_idle) == pytest.approx(expect)

    def test_infinite_when_idle_cheaper_than_sleep(self):
        s = DEFAULT_SLEEP
        assert s.breakeven_time(s.sleep_power) == np.inf
        assert s.breakeven_time(s.sleep_power / 2) == np.inf

    def test_vectorized(self):
        out = DEFAULT_SLEEP.breakeven_time(np.array([0.1, 0.5]))
        assert out.shape == (2,)
        assert out[0] > out[1]

    def test_paper_anchor_1_7_mcycles_at_half_speed(self):
        # Fig. 3: "When clocked at half the maximum frequency ... an
        # idle period of at least 1.7 million cycles is required."
        m = PowerModel()
        f = 0.5 * m.max_frequency
        vdd = m.vdd_for_frequency(f)
        t = DEFAULT_SLEEP.breakeven_time(m.idle_power(vdd))
        assert t * f == pytest.approx(1.7e6, rel=0.02)

    def test_breakeven_cycles_on_ladder_point(self):
        lad = DVSLadder()
        p = lad.max_point
        cycles = DEFAULT_SLEEP.breakeven_cycles(p)
        assert cycles == pytest.approx(
            float(DEFAULT_SLEEP.breakeven_time(p.idle_power)) * p.frequency)


class TestGapEnergy:
    def test_short_gap_stays_on(self):
        s = DEFAULT_SLEEP
        p_idle = 0.4
        t = 0.5 * float(s.breakeven_time(p_idle))
        assert s.gap_energy(t, p_idle) == pytest.approx(t * p_idle)
        assert not s.would_shut_down(t, p_idle)

    def test_long_gap_sleeps(self):
        s = DEFAULT_SLEEP
        p_idle = 0.4
        t = 10 * float(s.breakeven_time(p_idle))
        assert s.gap_energy(t, p_idle) == pytest.approx(
            s.overhead_energy + t * s.sleep_power)
        assert s.would_shut_down(t, p_idle)

    def test_gap_energy_is_min_of_both_options(self):
        s = DEFAULT_SLEEP
        p_idle = 0.35
        for t in np.logspace(-6, 1, 30):
            e = s.gap_energy(float(t), p_idle)
            assert e <= t * p_idle + 1e-15
            assert e <= s.overhead_energy + t * s.sleep_power + 1e-15

    def test_zero_gap_costs_nothing(self):
        assert DEFAULT_SLEEP.gap_energy(0.0, 0.4) == 0.0

    def test_negative_gap_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            DEFAULT_SLEEP.gap_energy(-1.0, 0.4)

    def test_vectorized_gap_energy(self):
        s = DEFAULT_SLEEP
        t = np.array([1e-6, 1.0])
        e = s.gap_energy(t, 0.4)
        assert e.shape == (2,)
        assert e[0] == pytest.approx(1e-6 * 0.4)

    def test_vectorized_would_shut_down(self):
        s = DEFAULT_SLEEP
        out = s.would_shut_down(np.array([1e-9, 100.0]), 0.4)
        assert list(out) == [False, True]

    def test_free_overhead_always_sleeps(self):
        s = SleepModel(sleep_power=0.0, overhead_energy=0.0)
        assert s.would_shut_down(1e-12, 0.4)

    def test_breakeven_is_decision_boundary(self):
        s = DEFAULT_SLEEP
        p_idle = 0.4
        t_be = float(s.breakeven_time(p_idle))
        assert not s.would_shut_down(t_be * 0.999, p_idle)
        assert s.would_shut_down(t_be * 1.001, p_idle)
