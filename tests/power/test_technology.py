"""Tests for the technology constants (paper Table 1)."""

import pytest

from repro.power.technology import TECH_70NM, Technology


class TestDefaults:
    def test_table1_values(self):
        t = TECH_70NM
        assert t.k1 == 0.063
        assert t.k2 == 0.153
        assert t.k3 == 5.38e-7
        assert t.k4 == 1.83
        assert t.k5 == 4.19
        assert t.k6 == 5.26e-12
        assert t.k7 == -0.144
        assert t.vdd0 == 1.0
        assert t.vbs == -0.7
        assert t.alpha == 1.5
        assert t.vth1 == 0.244
        assert t.i_j == 4.8e-10
        assert t.c_eff == 0.43e-9
        assert t.l_d == 37.0
        assert t.l_g == 4.0e6

    def test_intrinsic_on_power_is_paper_value(self):
        assert TECH_70NM.p_on == pytest.approx(0.1)

    def test_default_activity_factor(self):
        assert TECH_70NM.activity == 1.0

    def test_is_frozen(self):
        with pytest.raises(AttributeError):
            TECH_70NM.k1 = 0.5  # type: ignore[misc]


class TestMinVdd:
    def test_min_vdd_value(self):
        # (vth1 - k2*vbs) / (1 + k1) for the 70 nm constants.
        assert TECH_70NM.min_vdd == pytest.approx(0.3511 / 1.063, rel=1e-6)

    def test_min_vdd_below_nominal(self):
        assert TECH_70NM.min_vdd < TECH_70NM.vdd0

    def test_min_vdd_tracks_body_bias(self):
        # A stronger reverse bias raises Vth, hence the floor.
        deeper = TECH_70NM.with_overrides(vbs=-1.0)
        assert deeper.min_vdd > TECH_70NM.min_vdd


class TestOverrides:
    def test_with_overrides_returns_new_instance(self):
        t2 = TECH_70NM.with_overrides(l_g=8.0e6)
        assert t2.l_g == 8.0e6
        assert TECH_70NM.l_g == 4.0e6
        assert t2 is not TECH_70NM

    def test_with_overrides_preserves_other_fields(self):
        t2 = TECH_70NM.with_overrides(p_on=0.2)
        assert t2.k4 == TECH_70NM.k4
        assert t2.c_eff == TECH_70NM.c_eff

    def test_with_unknown_field_raises(self):
        with pytest.raises(TypeError):
            TECH_70NM.with_overrides(not_a_field=1.0)


class TestAsDict:
    def test_contains_all_table1_keys(self):
        d = TECH_70NM.as_dict()
        for key in ("K1", "K2", "K3", "K4", "K5", "K6", "K7", "Vdd0",
                    "Vbs", "alpha", "Vth1", "Ij", "Ceff", "Ld", "Lg"):
            assert key in d

    def test_values_match_fields(self):
        d = TECH_70NM.as_dict()
        assert d["K3"] == TECH_70NM.k3
        assert d["Lg"] == TECH_70NM.l_g

    def test_custom_technology(self):
        t = Technology(p_on=0.5)
        assert t.as_dict()["Pon"] == 0.5
