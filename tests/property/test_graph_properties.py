"""Property-based tests for the graph substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.analysis import (
    average_parallelism,
    bottom_levels,
    critical_path_length,
    top_levels,
    total_work,
)
from repro.graphs.dag import TaskGraph
from repro.graphs.generators import sameprob_dag, stg_random_graph
from repro.graphs.stg import format_stg, parse_stg, strip_dummies


@st.composite
def random_dags(draw, max_nodes=30):
    """Arbitrary weighted DAGs via a random upper-triangular edge mask."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    weights = draw(st.lists(
        st.floats(min_value=1.0, max_value=100.0),
        min_size=n, max_size=n))
    edges = []
    for u in range(n):
        for v in range(u + 1, n):
            if draw(st.booleans()):
                edges.append((u, v))
    return TaskGraph({i: weights[i] for i in range(n)}, edges)


class TestStructuralProperties:
    @given(random_dags())
    @settings(max_examples=40)
    def test_topological_order_respects_edges(self, g):
        pos = {v: i for i, v in enumerate(g.topological_order())}
        for u, v in g.edges():
            assert pos[u] < pos[v]

    @given(random_dags())
    @settings(max_examples=40)
    def test_cpl_bounds(self, g):
        cpl = critical_path_length(g)
        assert cpl >= g.weights_array.max() - 1e-9
        assert cpl <= total_work(g) + 1e-9

    @given(random_dags())
    @settings(max_examples=40)
    def test_parallelism_at_least_one(self, g):
        assert average_parallelism(g) >= 1.0 - 1e-9

    @given(random_dags())
    @settings(max_examples=40)
    def test_levels_bound_cpl(self, g):
        tl, bl = top_levels(g), bottom_levels(g)
        cpl = critical_path_length(g)
        assert np.all(tl + bl - g.weights_array <= cpl + 1e-6)
        assert abs(tl.max() - bl.max()) <= 1e-9 * max(tl.max(), 1.0)

    @given(random_dags(), st.floats(min_value=0.1, max_value=1000.0))
    @settings(max_examples=40)
    def test_scaling_linearity(self, g, k):
        g2 = g.scaled(k)
        assert critical_path_length(g2) == np.float64(
            critical_path_length(g)) * k or abs(
            critical_path_length(g2) - critical_path_length(g) * k) < \
            1e-6 * critical_path_length(g2)
        assert abs(total_work(g2) - total_work(g) * k) <= \
            1e-9 * total_work(g2)


class TestStgRoundtrip:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_generated_graphs_roundtrip(self, seed):
        g = stg_random_graph(25, seed)
        back = strip_dummies(parse_stg(format_stg(g)))
        assert back.n == g.n
        assert back.m == g.m
        assert critical_path_length(back) == critical_path_length(g)
        assert total_work(back) == total_work(g)

    @given(st.integers(min_value=0, max_value=10_000),
           st.floats(min_value=0.0, max_value=0.9))
    @settings(max_examples=20, deadline=None)
    def test_sameprob_acyclic(self, seed, p):
        sameprob_dag(20, p, seed).topological_order()
