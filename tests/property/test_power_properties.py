"""Property-based tests for the power substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.power.dvs import DVSLadder
from repro.power.model import PowerModel
from repro.power.shutdown import SleepModel
from repro.power.technology import TECH_70NM

MODEL = PowerModel()
LADDER = DVSLadder()

voltages = st.floats(min_value=TECH_70NM.min_vdd + 1e-3, max_value=1.0)
frequencies = st.floats(min_value=1e6, max_value=LADDER.fmax)


class TestModelProperties:
    @given(voltages, voltages)
    def test_frequency_monotone(self, v1, v2):
        lo, hi = sorted((v1, v2))
        assert MODEL.frequency(lo) <= MODEL.frequency(hi)

    @given(voltages)
    def test_power_components_positive(self, v):
        assert MODEL.dynamic_power(v) >= 0
        assert MODEL.static_power(v) > 0
        assert MODEL.idle_power(v) > TECH_70NM.p_on

    @given(voltages)
    def test_active_dominates_idle(self, v):
        assert MODEL.active_power(v) >= MODEL.idle_power(v)

    @given(frequencies)
    def test_vdd_for_frequency_inverts(self, f):
        vdd = MODEL.vdd_for_frequency(f)
        achieved = MODEL.frequency(vdd)
        assert achieved >= f * (1 - 1e-9)
        assert achieved <= f * (1 + 1e-6)

    @given(voltages)
    def test_energy_per_cycle_consistent(self, v):
        f = MODEL.frequency(v)
        if f > 0:
            assert MODEL.energy_per_cycle(v) * f == np.float64(
                MODEL.active_power(v)) or abs(
                MODEL.energy_per_cycle(v) * f
                - MODEL.active_power(v)) < 1e-12


class TestLadderProperties:
    @given(st.floats(min_value=0.0, max_value=LADDER.fmax))
    def test_slowest_at_least_is_tight(self, f_req):
        p = LADDER.slowest_at_least(f_req)
        assert p.frequency >= f_req
        below = [q for q in LADDER if q.frequency < p.frequency]
        for q in below:
            assert q.frequency < f_req

    @given(st.floats(min_value=0.0, max_value=LADDER.fmax))
    def test_best_point_is_feasible_minimum(self, f_req):
        best = LADDER.best_point(f_req)
        feas = [q for q in LADDER if q.frequency >= f_req]
        assert best.frequency >= f_req
        assert best.energy_per_cycle == min(q.energy_per_cycle
                                            for q in feas)


class TestSleepProperties:
    @given(st.floats(min_value=0.0, max_value=100.0),
           st.floats(min_value=1e-4, max_value=3.0))
    def test_gap_energy_is_lower_envelope(self, t, p_idle):
        s = SleepModel()
        e = s.gap_energy(t, p_idle)
        assert e <= t * p_idle + 1e-12
        assert e <= s.overhead_energy + t * s.sleep_power + 1e-12
        assert e == min(t * p_idle, s.overhead_energy + t * s.sleep_power)

    @given(st.floats(min_value=0.0, max_value=100.0),
           st.floats(min_value=0.0, max_value=100.0),
           st.floats(min_value=1e-4, max_value=3.0))
    def test_gap_energy_monotone_in_duration(self, t1, t2, p_idle):
        s = SleepModel()
        lo, hi = sorted((t1, t2))
        assert s.gap_energy(lo, p_idle) <= s.gap_energy(hi, p_idle) + 1e-12

    @given(st.floats(min_value=0.0, max_value=10.0),
           st.floats(min_value=1e-4, max_value=3.0))
    @settings(max_examples=50)
    def test_decision_matches_energy(self, t, p_idle):
        s = SleepModel()
        shut = s.would_shut_down(t, p_idle)
        stay_on = t * p_idle
        sleep = s.overhead_energy + t * s.sleep_power
        assert shut == (sleep < stay_on)
