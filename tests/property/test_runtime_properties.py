"""Property-based tests for the runtime and trace simulators."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import default_platform, lamps_ps, sns
from repro.graphs.analysis import critical_path_length
from repro.graphs.generators import stg_random_graph
from repro.graphs.transforms import weight_jitter
from repro.runtime import (
    greedy_reclaim_policy,
    leakage_aware_reclaim_policy,
    simulate,
)
from repro.sched.deadlines import task_deadlines
from repro.sim import ProcState, TransitionModel, execute

seeds = st.integers(min_value=0, max_value=500)


def _plan(seed, factor=2.0):
    g = stg_random_graph(20, seed).scaled(3.1e6)
    deadline = factor * critical_path_length(g)
    return g, lamps_ps(g, deadline), task_deadlines(g, deadline)


class TestRuntimeProperties:
    @given(seeds, st.floats(min_value=0.0, max_value=0.9))
    @settings(max_examples=20, deadline=None)
    def test_wcet_replay_matches_plan(self, seed, _unused):
        g, plan, d = _plan(seed)
        sim = simulate(plan.schedule, plan.point, d)
        assert abs(sim.total_energy - plan.total_energy) \
            <= 1e-9 * plan.total_energy

    @given(seeds, st.floats(min_value=0.0, max_value=0.9),
           st.integers(min_value=0, max_value=100))
    @settings(max_examples=25, deadline=None)
    def test_no_policy_misses_deadlines(self, seed, jitter, jseed):
        g, plan, d = _plan(seed)
        plat = default_platform()
        actual_graph = weight_jitter(g, jitter, jseed)
        actual = {v: actual_graph.weight(v) for v in g.node_ids}
        for policy in (None,
                       greedy_reclaim_policy(plan.point, plat.ladder),
                       leakage_aware_reclaim_policy(plan.point,
                                                    plat.ladder)):
            sim = simulate(plan.schedule, plan.point, d,
                           actual_cycles=actual, policy=policy)
            assert sim.deadline_misses == ()

    @given(seeds, st.floats(min_value=0.0, max_value=0.9),
           st.integers(min_value=0, max_value=100))
    @settings(max_examples=20, deadline=None)
    def test_early_finish_never_costs_more(self, seed, jitter, jseed):
        g, plan, d = _plan(seed)
        actual_graph = weight_jitter(g, jitter, jseed)
        actual = {v: actual_graph.weight(v) for v in g.node_ids}
        wcet = simulate(plan.schedule, plan.point, d)
        act = simulate(plan.schedule, plan.point, d,
                       actual_cycles=actual)
        assert act.total_energy <= wcet.total_energy + 1e-9


class TestTraceProperties:
    @given(seeds, st.sampled_from([1.5, 2.0, 4.0]))
    @settings(max_examples=20, deadline=None)
    def test_trace_always_validates_and_matches(self, seed, factor):
        g, plan, d = _plan(seed, factor)
        trace = execute(plan.schedule, plan.point, plan.deadline_seconds)
        trace.validate()
        assert abs(trace.energy() - plan.total_energy) \
            <= 1e-9 * plan.total_energy

    @given(seeds,
           st.floats(min_value=0.0, max_value=1e-3),
           st.floats(min_value=0.0, max_value=1e-3))
    @settings(max_examples=20, deadline=None)
    def test_latency_energy_bounded_around_instant(
            self, seed, t_down, t_up):
        # Latencies have two opposite effects: they trim the span that
        # draws sleep power (the lumped transition energy is fixed, so
        # a sleeping gap gets *cheaper* by at most sleep_power * trim),
        # and they disqualify short gaps from sleeping at all (costlier).
        g, plan, d = _plan(seed)
        plat = default_platform()
        instant = execute(plan.schedule, plan.point,
                          plan.deadline_seconds)
        slow = execute(plan.schedule, plan.point, plan.deadline_seconds,
                       transitions=TransitionModel(down_latency=t_down,
                                                   up_latency=t_up))
        slow.validate()
        max_gaps = g.n + plan.schedule.n_processors
        trim_credit = (t_down + t_up) * plat.sleep.sleep_power * max_gaps
        assert slow.energy() >= instant.energy() - trim_credit - 1e-12

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_no_ps_trace_has_no_sleep(self, seed):
        g = stg_random_graph(20, seed).scaled(3.1e6)
        deadline = 2 * critical_path_length(g)
        r = sns(g, deadline)
        trace = execute(r.schedule, r.point, r.deadline_seconds,
                        shutdown=False)
        states = set()
        for p in trace.processors:
            states |= {s.state for s in trace.segments(p)}
        assert ProcState.SLEEP not in states
