"""Property-based tests for scheduling and the energy orderings."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.results import Heuristic
from repro.core.suite import paper_suite
from repro.graphs.analysis import critical_path_length, total_work
from repro.graphs.generators import stg_random_graph
from repro.sched.deadlines import task_deadlines
from repro.sched.list_scheduler import list_schedule
from repro.sched.validate import check_deadlines, validate_schedule

seeds = st.integers(min_value=0, max_value=10_000)
proc_counts = st.integers(min_value=1, max_value=12)
policies = st.sampled_from(["edf", "hlfet", "fifo", "lpt", "spt"])


class TestSchedulerProperties:
    @given(seeds, proc_counts, policies)
    @settings(max_examples=40, deadline=None)
    def test_schedules_always_valid(self, seed, n_procs, policy):
        g = stg_random_graph(25, seed)
        d = task_deadlines(g, 8 * critical_path_length(g))
        s = list_schedule(g, n_procs, d, policy=policy)
        validate_schedule(s)

    @given(seeds, proc_counts)
    @settings(max_examples=40, deadline=None)
    def test_makespan_bounds(self, seed, n_procs):
        g = stg_random_graph(25, seed)
        d = task_deadlines(g, 8 * critical_path_length(g))
        s = list_schedule(g, n_procs, d)
        cpl, work = critical_path_length(g), total_work(g)
        assert s.makespan >= max(cpl, work / n_procs) - 1e-6
        assert s.makespan <= work / n_procs + cpl * (n_procs - 1) \
            / n_procs + 1e-6

    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_enough_processors_reach_cpl(self, seed):
        g = stg_random_graph(20, seed)
        d = task_deadlines(g, 8 * critical_path_length(g))
        s = list_schedule(g, g.n, d)
        assert s.makespan == critical_path_length(g)

    @given(seeds, proc_counts)
    @settings(max_examples=30, deadline=None)
    def test_employed_at_most_given(self, seed, n_procs):
        g = stg_random_graph(25, seed)
        d = task_deadlines(g, 8 * critical_path_length(g))
        s = list_schedule(g, n_procs, d)
        assert 1 <= s.employed_processors <= n_procs


class TestHeuristicOrderingProperties:
    @given(seeds, st.sampled_from([1.5, 2.0, 4.0, 8.0]),
           st.sampled_from([3.1e4, 3.1e6]))
    @settings(max_examples=25, deadline=None)
    def test_energy_ordering_invariants(self, seed, factor, scale):
        g = stg_random_graph(20, seed).scaled(scale)
        deadline = factor * critical_path_length(g)
        res = paper_suite(g, deadline)
        e = {h: r.total_energy for h, r in res.items()}
        tol = 1e-9
        assert e[Heuristic.LIMIT_MF] <= e[Heuristic.LIMIT_SF] + tol
        assert e[Heuristic.LIMIT_SF] <= e[Heuristic.LAMPS_PS] * (1 + tol)
        assert e[Heuristic.LAMPS_PS] <= min(
            e[Heuristic.LAMPS], e[Heuristic.SNS_PS]) + tol
        assert e[Heuristic.SNS_PS] <= e[Heuristic.SNS] + tol
        assert e[Heuristic.LAMPS] <= e[Heuristic.SNS] + tol

    @given(seeds, st.sampled_from([1.5, 2.0, 4.0]))
    @settings(max_examples=25, deadline=None)
    def test_results_meet_deadlines(self, seed, factor):
        g = stg_random_graph(20, seed).scaled(3.1e6)
        deadline = factor * critical_path_length(g)
        d = task_deadlines(g, deadline)
        res = paper_suite(g, deadline)
        from repro.core.platform import default_platform

        fmax = default_platform().fmax
        for h in (Heuristic.SNS, Heuristic.LAMPS, Heuristic.SNS_PS,
                  Heuristic.LAMPS_PS):
            r = res[h]
            # Per task: finish / f <= d / fmax, i.e. the deadline check
            # at frequency ratio f / fmax must pass.
            assert check_deadlines(r.schedule, d,
                                   frequency_ratio=r.point.frequency
                                   / fmax) is None

    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_employed_processors_ordering(self, seed):
        # LAMPS never employs more processors than S&S.
        g = stg_random_graph(25, seed).scaled(3.1e6)
        res = paper_suite(g, 4 * critical_path_length(g))
        assert res[Heuristic.LAMPS].n_processors <= \
            res[Heuristic.SNS].n_processors


class TestCommSchedulerProperties:
    @given(seeds, proc_counts,
           st.floats(min_value=0.0, max_value=4.0))
    @settings(max_examples=25, deadline=None)
    def test_comm_schedules_always_valid(self, seed, n_procs, ccr):
        from repro.comm import comm_aware_schedule, uniform_ccr

        g = stg_random_graph(20, seed)
        d = task_deadlines(g, 8 * critical_path_length(g))
        cg = uniform_ccr(g, ccr, seed)
        validate_schedule(comm_aware_schedule(cg, n_procs, d))

    @given(seeds, st.floats(min_value=0.0, max_value=4.0))
    @settings(max_examples=20, deadline=None)
    def test_single_processor_immune_to_comm(self, seed, ccr):
        from repro.comm import comm_aware_schedule, uniform_ccr

        g = stg_random_graph(20, seed)
        d = task_deadlines(g, 8 * critical_path_length(g))
        free = comm_aware_schedule(uniform_ccr(g, 0.0), 1, d)
        costly = comm_aware_schedule(uniform_ccr(g, ccr, seed), 1, d)
        # One processor never pays transfer costs.
        assert costly.makespan == free.makespan

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_zero_comm_work_conserving_makespan(self, seed):
        from repro.comm import comm_aware_schedule, uniform_ccr

        g = stg_random_graph(20, seed)
        d = task_deadlines(g, 8 * critical_path_length(g))
        s = comm_aware_schedule(uniform_ccr(g, 0.0), g.n, d)
        # With enough processors and no transfer cost, every task can
        # run at its top level: makespan == CPL.
        assert s.makespan == critical_path_length(g)
