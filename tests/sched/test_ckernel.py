"""Differential tests: the ctypes C kernel vs the Python kernels.

:mod:`repro.sched.ckernel` claims its compiled event loop is a
line-for-line port of ``repro.sched.jit._schedule_arrays`` — the same
three strictly totally ordered min-heaps, the same lexicographic
comparisons on exact float64 values, and the only floating-point
arithmetic is the same ``finish = time + w[v]`` IEEE-754 addition.
That claim is what lets ``list_schedule`` dispatch to the C backend
without perturbing a single golden SHA, so it is asserted here with
array equality (``==``, not tolerance) over drawn graphs, policies and
processor counts, plus the dispatch/gate plumbing around it.

When the kernel could not be built (no system compiler) every
differential test is skipped; the gate tests still run.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.analysis import critical_path_length
from repro.graphs.generators import stg_random_graph
from repro.sched import ckernel, jit
from repro.sched.deadlines import task_deadlines
from repro.sched.list_scheduler import list_schedule
from repro.sched.priorities import priority_keys

needs_ckernel = pytest.mark.skipif(
    not ckernel.CKERNEL_ACTIVE,
    reason="C scheduler kernel unavailable (no compiler?)")


def _kernel_inputs(graph, deadlines, policy="edf"):
    succ_flat, succ_offsets = graph.succ_csr
    keys = np.ascontiguousarray(priority_keys(graph, deadlines, policy),
                                dtype=np.float64)
    w = np.ascontiguousarray(graph.weights_array, dtype=np.float64)
    deg = np.asarray(graph.in_degrees, dtype=np.intp)
    return keys, w, succ_flat, succ_offsets, deg


@st.composite
def instances(draw):
    seed = draw(st.integers(min_value=0, max_value=5_000))
    n = draw(st.sampled_from([5, 12, 25, 60]))
    n_procs = draw(st.sampled_from([1, 2, 4, 9, 16]))
    factor = draw(st.sampled_from([1.2, 2.0, 5.0]))
    g = stg_random_graph(n, seed).scaled(3.1e6)
    d = task_deadlines(g, factor * critical_path_length(g))
    return g, n_procs, d


@needs_ckernel
class TestCKernelMatchesPython:
    @given(instances())
    @settings(max_examples=60, deadline=None)
    def test_identical_arrays(self, inst):
        g, n_procs, d = inst
        keys, w, flat, offs, deg = _kernel_inputs(g, d)
        cs, cf, cp = ckernel.schedule_kernel_c(
            keys, w, flat, offs, deg, n_procs)
        ps, pf, pp = jit.schedule_kernel_python(
            keys, w, flat, offs, deg.copy(), n_procs)
        assert np.array_equal(cs, ps)
        assert np.array_equal(cf, pf)
        assert np.array_equal(cp, pp)

    @given(instances(), st.sampled_from(["edf", "hlfet", "fifo"]))
    @settings(max_examples=30, deadline=None)
    def test_identical_across_policies(self, inst, policy):
        g, n_procs, d = inst
        keys, w, flat, offs, deg = _kernel_inputs(g, d, policy)
        cs, cf, cp = ckernel.schedule_kernel_c(
            keys, w, flat, offs, deg, n_procs)
        ps, pf, pp = jit.schedule_kernel_python(
            keys, w, flat, offs, deg.copy(), n_procs)
        assert np.array_equal(cs, ps)
        assert np.array_equal(cf, pf)
        assert np.array_equal(cp, pp)

    def test_does_not_mutate_inputs(self):
        """The C signature takes const inputs; in_degrees especially
        must survive (the Python kernel consumes its copy)."""
        g = stg_random_graph(30, 5).scaled(3.1e6)
        d = task_deadlines(g, 2.0 * critical_path_length(g))
        keys, w, flat, offs, deg = _kernel_inputs(g, d)
        snapshots = [a.copy() for a in (keys, w, flat, offs, deg)]
        ckernel.schedule_kernel_c(keys, w, flat, offs, deg, 4)
        for a, snap in zip((keys, w, flat, offs, deg), snapshots):
            assert np.array_equal(a, snap)


@needs_ckernel
class TestListScheduleDispatch:
    def test_all_backends_agree_end_to_end(self, monkeypatch):
        """list_schedule through the C kernel vs forced heapq loop."""
        g = stg_random_graph(40, 11).scaled(3.1e6)
        d = task_deadlines(g, 2.0 * critical_path_length(g))
        import repro.sched.list_scheduler as ls

        monkeypatch.setattr(ls, "JIT_ACTIVE", False)
        monkeypatch.setattr(ls, "CKERNEL_ACTIVE", True)
        via_c = list_schedule(g, 4, d)
        monkeypatch.setattr(ls, "CKERNEL_ACTIVE", False)
        via_heapq = list_schedule(g, 4, d)
        assert np.array_equal(via_c.start_times, via_heapq.start_times)
        assert np.array_equal(via_c.finish_times, via_heapq.finish_times)
        assert np.array_equal(via_c.task_processors,
                              via_heapq.task_processors)
        assert via_c.makespan == via_heapq.makespan
        assert via_c.employed_processors == via_heapq.employed_processors


class TestGate:
    def test_env_gate_disables_kernel(self):
        """REPRO_NO_CKERNEL must force the pure-Python path."""
        if os.environ.get("REPRO_NO_CKERNEL"):
            assert not ckernel.CKERNEL_ACTIVE
        if ckernel._DISABLED:
            assert ckernel._kernel is None

    def test_inactive_kernel_raises_cleanly(self, monkeypatch):
        monkeypatch.setattr(ckernel, "_kernel", None)
        with pytest.raises(RuntimeError):
            ckernel.schedule_kernel_c(
                np.zeros(1), np.ones(1),
                np.empty(0, dtype=np.intp),
                np.zeros(2, dtype=np.intp),
                np.zeros(1, dtype=np.intp), 1)

    def test_self_test_passes_on_loaded_kernel(self):
        if ckernel._kernel is None:
            pytest.skip("kernel not loaded")
        assert ckernel._self_test(ckernel._kernel)

    def test_disabled_subprocess_never_activates(self):
        """A fresh interpreter under REPRO_NO_CKERNEL stays on Python."""
        import subprocess
        import sys

        env = dict(os.environ, REPRO_NO_CKERNEL="1")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (env.get("PYTHONPATH"), "src") if p)
        code = ("from repro.sched.ckernel import CKERNEL_ACTIVE; "
                "assert not CKERNEL_ACTIVE; print('ok')")
        out = subprocess.run([sys.executable, "-c", code], env=env,
                             capture_output=True, text=True, timeout=120)
        assert out.returncode == 0 and out.stdout.strip() == "ok"
