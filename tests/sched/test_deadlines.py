"""Tests for ALAP deadline assignment."""

import numpy as np
import pytest

from repro.graphs.generators import chain, independent_tasks
from repro.sched.deadlines import InfeasibleDeadlineError, task_deadlines


class TestBasic:
    def test_sink_gets_graph_deadline(self, diamond):
        d = task_deadlines(diamond, 10.0)
        assert d[diamond.index_of("d")] == 10.0

    def test_interior_propagation(self, diamond):
        d = task_deadlines(diamond, 10.0)
        # d must finish by 10, so b and c by 9, a by 9 - w(c) = 6.
        assert d[diamond.index_of("b")] == 9.0
        assert d[diamond.index_of("c")] == 9.0
        assert d[diamond.index_of("a")] == 6.0

    def test_chain(self):
        g = chain(3, weights=[2, 3, 4])
        d = task_deadlines(g, 20.0)
        assert list(d) == [13, 16, 20]

    def test_independent_all_get_deadline(self):
        g = independent_tasks(4)
        assert np.all(task_deadlines(g, 7.0) == 7.0)

    def test_non_positive_deadline_rejected(self, diamond):
        with pytest.raises(ValueError, match="positive"):
            task_deadlines(diamond, 0.0)


class TestFeasibility:
    def test_deadline_below_cpl_raises(self, diamond):
        with pytest.raises(InfeasibleDeadlineError):
            task_deadlines(diamond, 4.0)

    def test_deadline_equal_cpl_ok(self, diamond):
        d = task_deadlines(diamond, 5.0)
        assert d[diamond.index_of("a")] == pytest.approx(1.0)

    def test_check_can_be_disabled(self, diamond):
        d = task_deadlines(diamond, 4.0, check_feasible=False)
        assert d[diamond.index_of("d")] == 4.0


class TestOverrides:
    def test_override_tightens_single_task(self, diamond):
        d = task_deadlines(diamond, 10.0, overrides={"b": 5.0})
        assert d[diamond.index_of("b")] == 5.0
        # and pulls its predecessor earlier: a by min(6, 5-2) = 3.
        assert d[diamond.index_of("a")] == 3.0

    def test_override_looser_than_deadline_clamped(self, diamond):
        d = task_deadlines(diamond, 10.0, overrides={"d": 99.0})
        assert d[diamond.index_of("d")] == 10.0

    def test_unknown_task_raises(self, diamond):
        with pytest.raises(KeyError):
            task_deadlines(diamond, 10.0, overrides={"zzz": 5.0})

    def test_non_positive_override_rejected(self, diamond):
        with pytest.raises(ValueError):
            task_deadlines(diamond, 10.0, overrides={"b": 0.0})

    def test_infeasible_override_detected(self, diamond):
        # b's earliest finish is 3 (a then b); the propagated deadline
        # chain (a by 0) is impossible too — either task may be named.
        with pytest.raises(InfeasibleDeadlineError, match="'[ab]'"):
            task_deadlines(diamond, 10.0, overrides={"b": 2.0})
