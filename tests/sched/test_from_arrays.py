"""Equivalence of the two Schedule constructors.

``Schedule.from_arrays`` is the schedulers' zero-copy fast path; the
``Placement``-sequence constructor is the validating general entry.
Fed the same assignment they must produce indistinguishable kernels:
same makespan, same per-processor busy cycles and gap structure, and
the same lazily materialized placement view.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.analysis import critical_path_length
from repro.graphs.generators import stg_random_graph
from repro.sched.deadlines import task_deadlines
from repro.sched.list_scheduler import list_schedule
from repro.sched.schedule import Placement, Schedule


def _rebuild_via_placements(s: Schedule) -> Schedule:
    """Route a schedule's assignment through the legacy constructor."""
    g = s.graph
    placements = [
        Placement(task=g.id_of(i), processor=int(s.task_processors[i]),
                  start=float(s.start_times[i]),
                  finish=float(s.finish_times[i]))
        for i in range(g.n)
    ]
    return Schedule(g, s.n_processors, placements)


@st.composite
def schedules(draw):
    seed = draw(st.integers(min_value=0, max_value=5_000))
    n = draw(st.sampled_from([5, 12, 26, 45]))
    n_procs = draw(st.sampled_from([1, 3, 8]))
    g = stg_random_graph(n, seed).scaled(3.1e6)
    d = task_deadlines(g, 2.0 * critical_path_length(g))
    return list_schedule(g, n_procs, d)


class TestConstructorEquivalence:
    @given(schedules())
    @settings(max_examples=40, deadline=None)
    def test_kernels_are_identical(self, s):
        t = _rebuild_via_placements(s)
        assert t.makespan == s.makespan
        assert t.n_processors == s.n_processors
        assert t.employed_processors == s.employed_processors
        assert t.employed_processor_ids == s.employed_processor_ids
        np.testing.assert_array_equal(t.proc_busy_cycles, s.proc_busy_cycles)
        np.testing.assert_array_equal(t.proc_last_finish, s.proc_last_finish)
        flat_t, off_t = t.internal_gap_cycles
        flat_s, off_s = s.internal_gap_cycles
        np.testing.assert_array_equal(flat_t, flat_s)
        np.testing.assert_array_equal(off_t, off_s)
        horizon = 2.0 * max(1.0, s.makespan)
        for p in range(s.n_processors):
            assert t.busy_cycles(p) == s.busy_cycles(p)
            assert t.idle_gaps(p, horizon) == s.idle_gaps(p, horizon)
            np.testing.assert_array_equal(t.gap_lengths(p, horizon),
                                          s.gap_lengths(p, horizon))
            np.testing.assert_array_equal(t.tasks_on(p), s.tasks_on(p))

    @given(schedules())
    @settings(max_examples=40, deadline=None)
    def test_placement_views_are_identical(self, s):
        t = _rebuild_via_placements(s)
        for v in s.graph.node_ids:
            assert t.placement(v) == s.placement(v)
        for p in range(s.n_processors):
            assert t.processor_tasks(p) == s.processor_tasks(p)


class TestFromArraysValidation:
    @pytest.fixture()
    def small(self):
        return stg_random_graph(6, 1)

    def test_wrong_length_rejected(self, small):
        n = small.n
        with pytest.raises(ValueError, match="shape"):
            Schedule.from_arrays(small, 2, np.zeros(n - 1), np.ones(n),
                                 np.zeros(n, dtype=np.intp))

    def test_processor_out_of_range_rejected(self, small):
        n = small.n
        procs = np.zeros(n, dtype=np.intp)
        procs[-1] = 2
        with pytest.raises(ValueError, match="out of range"):
            Schedule.from_arrays(small, 2, np.zeros(n), np.ones(n), procs)

    def test_negative_processor_rejected(self, small):
        n = small.n
        procs = np.zeros(n, dtype=np.intp)
        procs[0] = -1
        with pytest.raises(ValueError, match="out of range"):
            Schedule.from_arrays(small, 2, np.zeros(n), np.ones(n), procs)

    def test_arrays_are_adopted_and_frozen(self, small):
        n = small.n
        starts = np.arange(n, dtype=float)
        finishes = starts + 1.0
        procs = np.zeros(n, dtype=np.intp)
        s = Schedule.from_arrays(small, 1, starts, finishes, procs)
        # Contiguous float inputs are adopted without a copy...
        assert s.start_times is starts and s.finish_times is finishes
        # ...and frozen against mutation through any alias.
        with pytest.raises(ValueError):
            starts[0] = 99.0

    def test_start_order_ties_match_legacy(self, small):
        """Equal starts on one processor keep dense-index order."""
        n = small.n
        starts = np.zeros(n)
        finishes = np.zeros(n)
        procs = np.zeros(n, dtype=np.intp)
        s = Schedule.from_arrays(small, 1, starts, finishes, procs)
        assert s.tasks_on(0).tolist() == list(range(n))
        assert [pl.task for pl in s.processor_tasks(0)] == \
            list(small.node_ids)
