"""Tests for the ASCII Gantt renderer."""

import pytest

from repro.sched.deadlines import task_deadlines
from repro.sched.gantt import render_gantt
from repro.sched.list_scheduler import list_schedule


class TestRenderGantt:
    def test_one_row_per_employed_processor(self, fig4_graph):
        s = list_schedule(fig4_graph, 3,
                          task_deadlines(fig4_graph, 100.0))
        text = render_gantt(s)
        rows = [l for l in text.splitlines() if l.startswith("P")]
        assert len(rows) == s.employed_processors

    def test_task_labels_appear(self, diamond):
        s = list_schedule(diamond, 2, task_deadlines(diamond, 100.0))
        text = render_gantt(s, width=60)
        assert "a" in text and "d" in text

    def test_horizon_extends_axis(self, diamond):
        s = list_schedule(diamond, 2, task_deadlines(diamond, 100.0))
        long = render_gantt(s, horizon_cycles=20.0)
        assert "= 20" in long

    def test_zero_span_raises(self, diamond):
        s = list_schedule(diamond, 2, task_deadlines(diamond, 100.0))
        with pytest.raises(ValueError):
            render_gantt(s, horizon_cycles=0.0)
