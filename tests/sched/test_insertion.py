"""Tests for the insertion-based list scheduler."""

import pytest

from repro.graphs.analysis import critical_path_length, total_work
from repro.graphs.dag import TaskGraph
from repro.graphs.generators import chain, independent_tasks, \
    stg_random_graph
from repro.sched.deadlines import task_deadlines
from repro.sched.insertion import insertion_schedule
from repro.sched.list_scheduler import list_schedule
from repro.sched.validate import validate_schedule


class TestBasics:
    def test_chain_serial(self):
        g = chain(5, weights=[1, 2, 3, 4, 5])
        s = insertion_schedule(g, 3, task_deadlines(g, 100.0))
        assert s.makespan == 15.0

    def test_independent_spread(self):
        g = independent_tasks(6, weights=[1] * 6)
        s = insertion_schedule(g, 3, task_deadlines(g, 100.0))
        assert s.makespan == 2.0

    def test_valid_on_random_graphs(self):
        for seed in range(6):
            g = stg_random_graph(40, seed)
            d = task_deadlines(g, 8 * critical_path_length(g))
            for n in (1, 3, 8):
                validate_schedule(insertion_schedule(g, n, d))

    def test_zero_processors_rejected(self, diamond):
        with pytest.raises(ValueError):
            insertion_schedule(diamond, 0)

    def test_deterministic(self):
        g = stg_random_graph(40, 3)
        d = task_deadlines(g, 4 * critical_path_length(g))
        a = insertion_schedule(g, 4, d)
        b = insertion_schedule(g, 4, d)
        for v in g.node_ids:
            assert a.placement(v) == b.placement(v)


class TestGapFilling:
    def test_fills_a_forced_gap(self):
        # c blocks behind long b; a later-priority short task x fits in
        # the hole before c on the same processor.
        g = TaskGraph(
            {"a": 1.0, "b": 10.0, "c": 2.0, "x": 3.0},
            [("a", "c"), ("b", "c")])
        import numpy as np

        # Priorities: schedule a, b, then c (waits until 10), then x.
        d = np.array([1.0, 2.0, 3.0, 4.0])
        s = insertion_schedule(g, 2, d, policy="edf")
        x = s.placement("x")
        # x must start immediately in the gap, not after c.
        assert x.start <= 1.0 + 1e-9

    def test_event_scheduler_does_not_backfill(self):
        # The same scenario under the work-conserving event scheduler:
        # x dispatches at time >= 0 anyway (it is a source), so compare
        # makespans on a graph where insertion genuinely helps.
        g = TaskGraph(
            {"a": 1.0, "b": 10.0, "c": 2.0, "x": 3.0},
            [("a", "c"), ("b", "c")])
        import numpy as np

        d = np.array([1.0, 2.0, 3.0, 4.0])
        ins = insertion_schedule(g, 2, d)
        evt = list_schedule(g, 2, d)
        assert ins.makespan <= evt.makespan + 1e-9


class TestComparableQuality:
    @pytest.mark.parametrize("seed", range(5))
    def test_makespan_bounds_hold(self, seed):
        g = stg_random_graph(50, seed)
        d = task_deadlines(g, 8 * critical_path_length(g))
        for n in (2, 4):
            s = insertion_schedule(g, n, d)
            assert s.makespan >= max(critical_path_length(g),
                                     total_work(g) / n) - 1e-6

    def test_policies_supported(self):
        g = stg_random_graph(30, 1)
        d = task_deadlines(g, 4 * critical_path_length(g))
        for policy in ("edf", "hlfet", "lpt"):
            validate_schedule(insertion_schedule(g, 3, d, policy=policy))
