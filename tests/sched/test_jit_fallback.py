"""Differential tests: the array scheduler kernel vs the heapq loop.

:mod:`repro.sched.jit` claims its array-heap kernel replays the exact
event loop of ``_list_schedule`` — every heap holds strictly totally
ordered entries, so any correct min-heap pops the same sequence, and
the only floating-point arithmetic is the same float64 addition.  The
claim is asserted here with array equality (``==``, not tolerance) on
drawn graphs, policies and processor counts.

The kernel under test is whatever backend is active: with numba
installed this exercises the compiled kernel; without (or under
``REPRO_NO_NUMBA=1``, which CI runs the whole tier-1 suite with) it
exercises the interpreted same-body fallback — so neither leg can rot.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.analysis import critical_path_length
from repro.graphs.generators import stg_random_graph
from repro.sched import jit
from repro.sched.deadlines import task_deadlines
from repro.sched.list_scheduler import list_schedule
from repro.sched.priorities import priority_keys
from repro.sched.schedule import Schedule


def _heapq_reference(graph, n_processors, deadlines, policy="edf"):
    """The historical heapq event loop, inlined as the reference."""
    import heapq

    n = graph.n
    keys = priority_keys(graph, deadlines, policy).tolist()
    w = graph.weights_list
    succs = graph.succ_indices
    n_pending = list(graph.in_degrees)
    ready = [(keys[v], v) for v in range(n) if not n_pending[v]]
    heapq.heapify(ready)
    running = []
    free_procs = list(range(n_processors))
    heapq.heapify(free_procs)
    starts = [0.0] * n
    finishes = [0.0] * n
    procs = [0] * n
    time = 0.0
    scheduled = 0
    while scheduled < n:
        while ready and free_procs:
            _, v = heapq.heappop(ready)
            p = heapq.heappop(free_procs)
            starts[v] = time
            finish = time + w[v]
            finishes[v] = finish
            procs[v] = p
            heapq.heappush(running, (finish, v, p))
            scheduled += 1
        if not running:
            break
        time, v, p = heapq.heappop(running)
        while True:
            heapq.heappush(free_procs, p)
            for s in succs[v]:
                n_pending[s] -= 1
                if not n_pending[s]:
                    heapq.heappush(ready, (keys[s], s))
            if not (running and running[0][0] <= time):
                break
            _, v, p = heapq.heappop(running)
    return (np.array(starts), np.array(finishes),
            np.array(procs, dtype=np.intp))


def _kernel_arrays(graph, n_processors, deadlines, policy="edf"):
    succ_flat, succ_offsets = graph.succ_csr
    return jit.schedule_kernel(
        priority_keys(graph, deadlines, policy), graph.weights_array,
        succ_flat, succ_offsets,
        np.asarray(graph.in_degrees, dtype=np.intp), n_processors)


@st.composite
def instances(draw):
    seed = draw(st.integers(min_value=0, max_value=5_000))
    n = draw(st.sampled_from([5, 12, 25, 60]))
    n_procs = draw(st.sampled_from([1, 2, 4, 9, 16]))
    factor = draw(st.sampled_from([1.2, 2.0, 5.0]))
    g = stg_random_graph(n, seed).scaled(3.1e6)
    d = task_deadlines(g, factor * critical_path_length(g))
    return g, n_procs, d


class TestKernelMatchesHeapq:
    @given(instances())
    @settings(max_examples=60, deadline=None)
    def test_identical_arrays(self, inst):
        g, n_procs, d = inst
        ks, kf, kp = _kernel_arrays(g, n_procs, d)
        hs, hf, hp = _heapq_reference(g, n_procs, d)
        assert np.array_equal(ks, hs)
        assert np.array_equal(kf, hf)
        assert np.array_equal(kp, hp)

    @given(instances(), st.sampled_from(["edf", "hlfet", "fifo"]))
    @settings(max_examples=30, deadline=None)
    def test_identical_across_policies(self, inst, policy):
        g, n_procs, d = inst
        ks, kf, kp = _kernel_arrays(g, n_procs, d, policy)
        hs, hf, hp = _heapq_reference(g, n_procs, d, policy)
        assert np.array_equal(ks, hs)
        assert np.array_equal(kf, hf)
        assert np.array_equal(kp, hp)

    @given(instances())
    @settings(max_examples=30, deadline=None)
    def test_python_kernel_matches_dispatch(self, inst):
        """The interpreted kernel body equals the dispatched backend."""
        g, n_procs, d = inst
        succ_flat, succ_offsets = g.succ_csr
        keys = np.ascontiguousarray(priority_keys(g, d, "edf"),
                                    dtype=np.float64)
        w = np.ascontiguousarray(g.weights_array, dtype=np.float64)
        deg = np.asarray(g.in_degrees, dtype=np.intp)
        ps, pf, pp = jit.schedule_kernel_python(
            keys, w, succ_flat, succ_offsets, deg.copy(), n_procs)
        ds, df, dp = jit.schedule_kernel(
            keys, w, succ_flat, succ_offsets, deg, n_procs)
        assert np.array_equal(ps, ds)
        assert np.array_equal(pf, df)
        assert np.array_equal(pp, dp)


class TestListScheduleDispatch:
    def test_list_schedule_output_is_backend_invariant(self, monkeypatch):
        """list_schedule returns the same Schedule either way the gate
        falls — forced through both branches in one process."""
        g = stg_random_graph(30, 5).scaled(3.1e6)
        d = task_deadlines(g, 2.0 * critical_path_length(g))
        import repro.sched.list_scheduler as ls

        monkeypatch.setattr(ls, "JIT_ACTIVE", True)
        via_kernel = list_schedule(g, 4, d)
        monkeypatch.setattr(ls, "JIT_ACTIVE", False)
        via_heapq = list_schedule(g, 4, d)
        assert isinstance(via_kernel, Schedule)
        assert np.array_equal(via_kernel.start_times,
                              via_heapq.start_times)
        assert np.array_equal(via_kernel.finish_times,
                              via_heapq.finish_times)
        assert np.array_equal(via_kernel.task_processors,
                              via_heapq.task_processors)
        assert via_kernel.makespan == via_heapq.makespan

    def test_gate_reflects_environment(self):
        """JIT can only be active when numba is importable and the
        escape hatch is unset."""
        if not jit.HAVE_NUMBA:
            assert not jit.JIT_ACTIVE
        import os
        if os.environ.get("REPRO_NO_NUMBA"):
            assert not jit.JIT_ACTIVE

    def test_succ_csr_matches_succ_indices(self):
        g = stg_random_graph(40, 9)
        flat, offsets = g.succ_csr
        assert offsets[0] == 0 and offsets[-1] == flat.size
        for v in range(g.n):
            assert tuple(flat[offsets[v]:offsets[v + 1]]) == \
                g.succ_indices[v]
        with np.testing.assert_raises(ValueError):
            flat[...] = 0
