"""Tests for the event-driven list scheduler."""

import numpy as np
import pytest

from repro.graphs.analysis import critical_path_length, total_work
from repro.graphs.dag import TaskGraph
from repro.graphs.generators import chain, independent_tasks, \
    stg_random_graph
from repro.sched.deadlines import task_deadlines
from repro.sched.list_scheduler import list_schedule
from repro.sched.validate import validate_schedule


class TestBasics:
    def test_chain_is_serial_regardless_of_processors(self):
        g = chain(5, weights=[1, 2, 3, 4, 5])
        s = list_schedule(g, 4, task_deadlines(g, 100.0))
        assert s.makespan == 15.0
        assert s.employed_processors == 1

    def test_independent_tasks_spread(self):
        g = independent_tasks(6, weights=[1] * 6)
        s = list_schedule(g, 3, task_deadlines(g, 100.0))
        assert s.makespan == 2.0
        assert s.employed_processors == 3

    def test_single_processor_serializes(self, diamond):
        s = list_schedule(diamond, 1, task_deadlines(diamond, 100.0))
        assert s.makespan == total_work(diamond)

    def test_enough_processors_reach_cpl(self, fig4_graph):
        s = list_schedule(fig4_graph, fig4_graph.n,
                          task_deadlines(fig4_graph, 100.0))
        assert s.makespan == critical_path_length(fig4_graph)

    def test_zero_processors_rejected(self, diamond):
        with pytest.raises(ValueError):
            list_schedule(diamond, 0)

    def test_schedule_is_valid(self, fig4_graph):
        for n in (1, 2, 3, 5):
            validate_schedule(list_schedule(
                fig4_graph, n, task_deadlines(fig4_graph, 100.0)))


class TestWorkConservation:
    def test_no_idle_while_ready(self, diamond):
        # Work conserving: a at 0; b and c dispatch the moment a ends.
        s = list_schedule(diamond, 2, task_deadlines(diamond, 100.0))
        assert s.placement("b").start == 1.0
        assert s.placement("c").start == 1.0

    def test_packs_low_processor_ids_first(self):
        g = independent_tasks(2)
        s = list_schedule(g, 8, task_deadlines(g, 10.0))
        procs = {s.placement(v).processor for v in g.node_ids}
        assert procs == {0, 1}


class TestEdfOrdering:
    def test_tighter_deadline_goes_first(self):
        g = independent_tasks(2, weights=[5, 5])
        d = np.array([50.0, 10.0])
        s = list_schedule(g, 1, d)
        assert s.placement(1).start == 0.0
        assert s.placement(0).start == 5.0

    def test_tie_broken_by_node_index(self):
        g = independent_tasks(2, weights=[5, 5])
        s = list_schedule(g, 1, np.array([10.0, 10.0]))
        assert s.placement(0).start == 0.0

    def test_simultaneous_release_competes_on_priority(self):
        # x and y finish together; of their successors the tighter
        # deadline must be dispatched on the single free processor.
        g = TaskGraph({"x": 2.0, "y": 2.0, "late": 1.0, "soon": 1.0},
                      [("x", "late"), ("y", "soon")])
        d = np.array([100.0, 100.0, 100.0, 3.0])
        s = list_schedule(g, 2, d)
        assert s.placement("soon").start == 2.0


class TestPolicies:
    @pytest.mark.parametrize("policy", ["edf", "hlfet", "fifo", "lpt", "spt"])
    def test_all_policies_produce_valid_schedules(self, policy):
        g = stg_random_graph(60, 11)
        d = task_deadlines(g, 4 * critical_path_length(g))
        s = list_schedule(g, 4, d, policy=policy)
        validate_schedule(s)

    def test_policy_changes_schedule(self):
        g = stg_random_graph(60, 11)
        d = task_deadlines(g, 4 * critical_path_length(g))
        a = list_schedule(g, 3, d, policy="edf")
        b = list_schedule(g, 3, d, policy="spt")
        assert any(a.placement(v) != b.placement(v) for v in g.node_ids)


class TestDeterminism:
    def test_same_inputs_same_schedule(self):
        g = stg_random_graph(80, 5)
        d = task_deadlines(g, 2 * critical_path_length(g))
        a = list_schedule(g, 4, d)
        b = list_schedule(g, 4, d)
        for v in g.node_ids:
            assert a.placement(v) == b.placement(v)


class TestMakespanBounds:
    @pytest.mark.parametrize("seed", range(5))
    def test_classic_bounds(self, seed):
        g = stg_random_graph(100, seed)
        d = task_deadlines(g, 8 * critical_path_length(g))
        for n in (1, 2, 5):
            s = list_schedule(g, n, d)
            cpl = critical_path_length(g)
            work = total_work(g)
            assert s.makespan >= max(cpl, work / n) - 1e-6
            # Graham's bound for any list schedule.
            assert s.makespan <= work / n + cpl * (n - 1) / n + 1e-6

    def test_default_deadline_vector(self, diamond):
        # Without deadlines the scheduler still produces a valid schedule.
        validate_schedule(list_schedule(diamond, 2))
