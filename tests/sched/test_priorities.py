"""Tests for the list-scheduling priority policies."""

import numpy as np
import pytest

from repro.sched.deadlines import task_deadlines
from repro.sched.priorities import PRIORITY_POLICIES, priority_keys, \
    random_policy


class TestEdf:
    def test_keys_are_deadlines(self, diamond):
        d = task_deadlines(diamond, 10.0)
        keys = priority_keys(diamond, d, "edf")
        assert np.array_equal(keys, d)


class TestHlfet:
    def test_longest_path_first(self, diamond):
        keys = priority_keys(diamond, np.zeros(diamond.n), "hlfet")
        # a has bottom level 5 (longest), so the smallest key.
        order = np.argsort(keys)
        assert diamond.id_of(int(order[0])) == "a"


class TestFifo:
    def test_topological_ranks(self, diamond):
        keys = priority_keys(diamond, np.zeros(diamond.n), "fifo")
        topo = diamond.topological_order()
        for rank, v in enumerate(topo):
            assert keys[diamond.index_of(v)] == rank


class TestSizePolicies:
    def test_lpt_prefers_heavy(self, diamond):
        keys = priority_keys(diamond, np.zeros(diamond.n), "lpt")
        assert keys[diamond.index_of("c")] < keys[diamond.index_of("a")]

    def test_spt_prefers_light(self, diamond):
        keys = priority_keys(diamond, np.zeros(diamond.n), "spt")
        assert keys[diamond.index_of("a")] < keys[diamond.index_of("c")]


class TestRandom:
    def test_deterministic_per_seed(self, diamond):
        pol = random_policy(3)
        a = priority_keys(diamond, np.zeros(diamond.n), pol)
        b = priority_keys(diamond, np.zeros(diamond.n), pol)
        assert np.array_equal(a, b)

    def test_is_a_permutation(self, diamond):
        keys = priority_keys(diamond, np.zeros(diamond.n), random_policy(1))
        assert sorted(keys) == list(range(diamond.n))


class TestResolution:
    def test_registry_names_all_work(self, diamond):
        d = task_deadlines(diamond, 10.0)
        for name in PRIORITY_POLICIES:
            keys = priority_keys(diamond, d, name)
            assert keys.shape == (diamond.n,)

    def test_unknown_name_raises(self, diamond):
        with pytest.raises(KeyError):
            priority_keys(diamond, np.zeros(diamond.n), "bogus")

    def test_callable_policy(self, diamond):
        keys = priority_keys(diamond, np.zeros(diamond.n),
                             lambda g, d: np.arange(g.n, dtype=float))
        assert keys[0] == 0.0

    def test_wrong_shape_rejected(self, diamond):
        with pytest.raises(ValueError, match="shape"):
            priority_keys(diamond, np.zeros(diamond.n),
                          lambda g, d: np.zeros(2))
