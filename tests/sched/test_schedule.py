"""Tests for the Schedule data structure."""

import numpy as np
import pytest

from repro.sched.schedule import Placement, Schedule


@pytest.fixture
def two_proc_schedule(diamond):
    """A hand-built valid schedule of the diamond on 2 processors."""
    return Schedule(diamond, 2, [
        Placement("a", 0, 0.0, 1.0),
        Placement("b", 1, 1.0, 3.0),
        Placement("c", 0, 1.0, 4.0),
        Placement("d", 0, 4.0, 5.0),
    ])


class TestConstruction:
    def test_makespan(self, two_proc_schedule):
        assert two_proc_schedule.makespan == 5.0

    def test_duplicate_placement_rejected(self, diamond):
        pls = [Placement(v, 0, 0, 1) for v in ("a", "a", "b", "c", "d")]
        with pytest.raises(ValueError, match="twice"):
            Schedule(diamond, 1, pls)

    def test_missing_task_rejected(self, diamond):
        with pytest.raises(ValueError, match="unplaced"):
            Schedule(diamond, 1, [Placement("a", 0, 0, 1)])

    def test_processor_out_of_range_rejected(self, diamond):
        pls = [Placement(v, 5, 0, 1) for v in diamond.node_ids]
        with pytest.raises(ValueError, match="out of range"):
            Schedule(diamond, 2, pls)

    def test_zero_processors_rejected(self, diamond):
        with pytest.raises(ValueError):
            Schedule(diamond, 0, [])


class TestQueries:
    def test_placement_lookup(self, two_proc_schedule):
        pl = two_proc_schedule.placement("c")
        assert pl.processor == 0 and pl.start == 1.0

    def test_processor_tasks_sorted_by_start(self, two_proc_schedule):
        tasks = [p.task for p in two_proc_schedule.processor_tasks(0)]
        assert tasks == ["a", "c", "d"]

    def test_finish_times_indexed_by_node(self, two_proc_schedule, diamond):
        ft = two_proc_schedule.finish_times
        assert ft[diamond.index_of("b")] == 3.0

    def test_employed_processors(self, two_proc_schedule):
        assert two_proc_schedule.employed_processors == 2

    def test_unused_processor_not_counted(self, diamond):
        s = Schedule(diamond, 5, [
            Placement("a", 0, 0, 1), Placement("b", 0, 1, 3),
            Placement("c", 0, 3, 6), Placement("d", 0, 6, 7)])
        assert s.employed_processors == 1

    def test_busy_cycles(self, two_proc_schedule):
        assert two_proc_schedule.busy_cycles(0) == 5.0
        assert two_proc_schedule.busy_cycles(1) == 2.0


class TestGaps:
    def test_interior_and_trailing_gaps(self, two_proc_schedule):
        gaps = two_proc_schedule.idle_gaps(1, 10.0)
        # Proc 1 runs b in [1, 3]: leading [0,1], trailing [3,10].
        assert gaps == [(0.0, 1.0), (3.0, 10.0)]

    def test_no_gaps_on_packed_processor(self, two_proc_schedule):
        assert two_proc_schedule.idle_gaps(0, 5.0) == []

    def test_unused_processor_single_full_gap(self, diamond):
        s = Schedule(diamond, 2, [
            Placement(v, 0, i, i + 1)
            for i, v in enumerate(["a", "b", "c", "d"])])
        assert s.idle_gaps(1, 8.0) == [(0.0, 8.0)]

    def test_horizon_before_finish_raises(self, two_proc_schedule):
        with pytest.raises(ValueError, match="horizon"):
            two_proc_schedule.idle_gaps(0, 3.0)

    def test_gap_lengths_vector(self, two_proc_schedule):
        lens = two_proc_schedule.gap_lengths(1, 10.0)
        assert np.allclose(lens, [1.0, 7.0])

    def test_gap_lengths_empty(self, two_proc_schedule):
        assert two_proc_schedule.gap_lengths(0, 5.0).size == 0


class TestRequiredFrequency:
    def test_uniform_deadline(self, two_proc_schedule, diamond):
        d = np.full(diamond.n, 10.0)
        # max finish = 5, deadline 10 -> half speed suffices.
        assert two_proc_schedule.required_reference_frequency(d) == \
            pytest.approx(0.5)

    def test_tight_task_dominates(self, two_proc_schedule, diamond):
        d = np.full(diamond.n, 10.0)
        d[diamond.index_of("b")] = 3.0  # b finishes at 3 -> ratio 1
        assert two_proc_schedule.required_reference_frequency(d) == \
            pytest.approx(1.0)

    def test_wrong_length_raises(self, two_proc_schedule):
        with pytest.raises(ValueError, match="length"):
            two_proc_schedule.required_reference_frequency(np.ones(3))

    def test_infeasible_zero_deadline(self, two_proc_schedule, diamond):
        d = np.zeros(diamond.n)
        assert two_proc_schedule.required_reference_frequency(d) == np.inf


class TestGapTolerance:
    def test_horizon_equal_to_finish_at_large_scale(self, diamond):
        """Regression: a horizon that equals the last finish up to
        float rounding (seconds->cycles round trips at 1e8+ scales)
        must yield no trailing gap rather than raise."""
        g = diamond.scaled(3.1e7)
        s = Schedule(g, 1, [
            Placement("a", 0, 0.0, 1.0 * 3.1e7),
            Placement("b", 0, 1.0 * 3.1e7, 3.0 * 3.1e7),
            Placement("c", 0, 3.0 * 3.1e7, 6.0 * 3.1e7),
            Placement("d", 0, 6.0 * 3.1e7, 7.0 * 3.1e7),
        ])
        finish = 7.0 * 3.1e7
        # A horizon epsilon *below* the true finish (fp round trip).
        wobbled = finish * (1.0 - 1e-12)
        assert s.idle_gaps(0, wobbled) == []
        # And epsilon above: still no spurious sliver gap.
        assert s.idle_gaps(0, finish * (1.0 + 1e-12)) == []
