"""Tests for the schedule validator (it must catch bad schedules)."""

import numpy as np
import pytest

from repro.sched.schedule import Placement, Schedule
from repro.sched.validate import (
    ScheduleInvariantError,
    check_deadlines,
    validate_schedule,
)


def make(diamond, placements):
    return Schedule(diamond, 3, placements)


@pytest.fixture
def good(diamond):
    return make(diamond, [
        Placement("a", 0, 0.0, 1.0),
        Placement("b", 1, 1.0, 3.0),
        Placement("c", 0, 1.0, 4.0),
        Placement("d", 0, 4.0, 5.0),
    ])


class TestValidate:
    def test_accepts_valid(self, good):
        validate_schedule(good)

    def test_catches_precedence_violation(self, diamond):
        s = make(diamond, [
            Placement("a", 0, 0.0, 1.0),
            Placement("b", 1, 0.5, 2.5),  # starts before a finishes
            Placement("c", 0, 1.0, 4.0),
            Placement("d", 2, 4.0, 5.0),
        ])
        with pytest.raises(ScheduleInvariantError, match="predecessor"):
            validate_schedule(s)

    def test_catches_overlap(self, diamond):
        s = make(diamond, [
            Placement("a", 0, 0.0, 1.0),
            Placement("b", 0, 0.5, 2.5),  # overlaps a on proc 0
            Placement("c", 1, 1.0, 4.0),
            Placement("d", 2, 4.0, 5.0),
        ])
        with pytest.raises(ScheduleInvariantError):
            validate_schedule(s)

    def test_catches_wrong_duration(self, diamond):
        s = make(diamond, [
            Placement("a", 0, 0.0, 1.0),
            Placement("b", 1, 1.0, 2.0),  # weight is 2, runs 1
            Placement("c", 0, 1.0, 4.0),
            Placement("d", 2, 4.0, 5.0),
        ])
        with pytest.raises(ScheduleInvariantError, match="weight"):
            validate_schedule(s)

    def test_catches_negative_start(self, diamond):
        s = make(diamond, [
            Placement("a", 0, -1.0, 0.0),
            Placement("b", 1, 0.0, 2.0),
            Placement("c", 0, 0.0, 3.0),
            Placement("d", 2, 3.0, 4.0),
        ])
        with pytest.raises(ScheduleInvariantError, match="negative"):
            validate_schedule(s)


class TestCheckDeadlines:
    def test_met(self, good, diamond):
        assert check_deadlines(good, np.full(diamond.n, 5.0)) is None

    def test_missed_names_task(self, good, diamond):
        msg = check_deadlines(good, np.full(diamond.n, 4.5))
        assert msg is not None and "'d'" in msg

    def test_frequency_ratio_rescues(self, good, diamond):
        # At double speed everything finishes by 2.5.
        assert check_deadlines(good, np.full(diamond.n, 2.5),
                               frequency_ratio=2.0) is None

    def test_slowdown_breaks(self, good, diamond):
        assert check_deadlines(good, np.full(diamond.n, 5.0),
                               frequency_ratio=0.5) is not None

    def test_bad_ratio_rejected(self, good, diamond):
        with pytest.raises(ValueError):
            check_deadlines(good, np.full(diamond.n, 5.0),
                            frequency_ratio=0.0)
