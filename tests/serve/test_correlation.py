"""Request correlation: minted request_ids thread through the batcher
into dispatch, chunk and per-instance worker spans — surviving dedupe
and the infeasible-retry path — and come back out in trace exports."""

import asyncio
import json

from repro.obs.export import chrome_trace
from repro.serve import ScheduleServer

SMALL = {"graph": {"name": "corr", "weights": [3.1e6, 6.2e6, 4.0e6],
                   "edges": [[0, 1], [0, 2]]},
         "deadline_factor": 2.0, "policy": "edf"}


async def _request(host, port, method, target, body=None):
    reader, writer = await asyncio.open_connection(host, port)
    try:
        payload = json.dumps(body).encode() if body is not None else b""
        writer.write((f"{method} {target} HTTP/1.1\r\nHost: t\r\n"
                      f"Content-Length: {len(payload)}\r\n"
                      f"Connection: close\r\n\r\n").encode() + payload)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
    head, _, rest = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, json.loads(rest) if rest else {}


def _serve(test_body, **server_kw):
    async def main():
        server = ScheduleServer(**server_kw)
        host, port = await server.start(port=0)
        try:
            await test_body(server, host, port)
        finally:
            await server.stop()

    asyncio.run(main())


def _spans(server, name):
    return [s for s in server.obs.spans if s.name == name]


class TestCorrelation:
    def test_response_echoes_minted_request_id(self, tmp_path):
        async def body(server, host, port):
            _, doc = await _request(host, port, "POST", "/v1/schedule",
                                    SMALL)
            assert doc["request_id"] == "r00000001"
            _, doc = await _request(host, port, "POST", "/v1/schedule",
                                    SMALL)
            assert doc["request_id"] == "r00000002"
            # Errors carry the id too.
            _, doc = await _request(host, port, "POST", "/v1/schedule",
                                    {"bad": 1})
            assert doc["request_id"] == "r00000003"

        _serve(body, cache_dir=str(tmp_path))

    def test_ids_reach_dispatch_and_worker_spans(self, tmp_path):
        async def body(server, host, port):
            _, doc = await _request(host, port, "POST", "/v1/schedule",
                                    SMALL)
            rid = doc["request_id"]

            (dispatch,) = _spans(server, "serve.dispatch")
            assert dispatch.args["request_ids"] == [rid]

            instances = _spans(server, "exec.instance")
            assert instances, "live_obs recorded no worker spans"
            assert all(s.args.get("request_ids") == [rid]
                       for s in instances)
            request_spans = _spans(server, "serve.request")
            assert request_spans[0].args["request_id"] == rid

        _serve(body, cache_dir=str(tmp_path))

    def test_deduped_riders_all_appear_on_the_flight(self, tmp_path):
        async def body(server, host, port):
            pairs = await asyncio.gather(*[
                _request(host, port, "POST", "/v1/schedule", SMALL)
                for _ in range(4)
            ])
            rids = {doc["request_id"] for _s, doc in pairs}
            assert len(rids) == 4  # every HTTP request got its own id

            (dispatch,) = _spans(server, "serve.dispatch")
            riding = set(dispatch.args["request_ids"])
            # Every id was minted for this burst; at least the flight
            # opener must be on the dispatch, and nothing foreign is.
            assert riding <= rids and riding
            assert server.batcher.stats.dispatched_instances == 1

        _serve(body, cache_dir=str(tmp_path), window_seconds=0.05)

    def test_retry_drops_only_the_offender_ids(self, tmp_path):
        async def body(server, host, port):
            hopeless = dict(SMALL, deadline_factor=0.25)
            pairs = await asyncio.gather(
                _request(host, port, "POST", "/v1/schedule", SMALL),
                _request(host, port, "POST", "/v1/schedule", hopeless),
            )
            by_status = {status: doc for status, doc in pairs}
            assert set(by_status) == {200, 422}
            ok_rid = by_status[200]["request_id"]
            bad_rid = by_status[422]["request_id"]

            (dispatch,) = _spans(server, "serve.dispatch")
            assert set(dispatch.args["request_ids"]) == {ok_rid, bad_rid}
            assert server.obs.counters["serve.batch_retries"] == 1

            # The retry re-dispatched only the survivor: the last
            # chunk's instance spans carry the ok id alone, while the
            # first attempt's spans named both riders.
            instance_ids = [tuple(s.args.get("request_ids") or ())
                            for s in _spans(server, "exec.instance")]
            assert instance_ids, "no worker spans recorded"
            first, last = instance_ids[0], instance_ids[-1]
            assert set(last) == {ok_rid}
            assert bad_rid in first and ok_rid in first

        _serve(body, cache_dir=str(tmp_path), window_seconds=0.05)

    def test_chrome_trace_events_carry_request_ids(self, tmp_path):
        async def body(server, host, port):
            _, doc = await _request(host, port, "POST", "/v1/schedule",
                                    SMALL)
            rid = doc["request_id"]
            trace = chrome_trace(server.obs)
            tagged = [e for e in trace["traceEvents"]
                      if (e.get("args") or {}).get("request_ids")
                      == [rid]]
            names = {e["name"] for e in tagged}
            assert "serve.dispatch" in names
            assert "exec.instance" in names

        _serve(body, cache_dir=str(tmp_path))
