"""The /metrics Prometheus exposition and the /healthz readiness probe."""

import asyncio
import json

from repro.obs.metrics import parse_prometheus, validate_exposition
from repro.serve import ScheduleServer

SMALL = {"graph": {"name": "met", "weights": [3.1e6, 6.2e6, 4.0e6],
                   "edges": [[0, 1], [0, 2]]},
         "deadline_factor": 2.0, "policy": "edf"}


async def _raw(host, port, method, target, body=None):
    """One exchange; returns (status, content_type, body_text)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        payload = json.dumps(body).encode() if body is not None else b""
        writer.write((f"{method} {target} HTTP/1.1\r\nHost: t\r\n"
                      f"Content-Length: {len(payload)}\r\n"
                      f"Connection: close\r\n\r\n").encode() + payload)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
    head, _, rest = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    content_type = ""
    for line in head.split(b"\r\n"):
        if line.lower().startswith(b"content-type:"):
            content_type = line.split(b":", 1)[1].strip().decode()
    return status, content_type, rest.decode()


def _serve(test_body, **server_kw):
    async def main():
        server = ScheduleServer(**server_kw)
        host, port = await server.start(port=0)
        try:
            await test_body(server, host, port)
        finally:
            await server.stop()

    asyncio.run(main())


class TestMetricsEndpoint:
    def test_fresh_server_exposition_is_valid(self, tmp_path):
        async def body(server, host, port):
            status, ctype, text = await _raw(host, port, "GET",
                                             "/metrics")
            assert status == 200
            assert ctype.startswith("text/plain")
            assert "version=0.0.4" in ctype
            assert validate_exposition(text) == []

        _serve(body, cache_dir=str(tmp_path))

    def test_counters_and_histograms_after_traffic(self, tmp_path):
        async def body(server, host, port):
            await _raw(host, port, "POST", "/v1/schedule", SMALL)
            await _raw(host, port, "POST", "/v1/schedule", SMALL)
            _, _, text = await _raw(host, port, "GET", "/metrics")
            assert validate_exposition(text) == []
            families = parse_prometheus(text)

            requests = families["repro_serve_requests_total"]["samples"]
            assert requests == [("repro_serve_requests_total", {}, 2.0)]
            warm = families["repro_serve_warm_hits_total"]["samples"]
            assert warm[0][2] == 1.0

            latency = families["repro_serve_request_seconds"]
            assert latency["type"] == "histogram"
            count = [v for m, _l, v in latency["samples"]
                     if m.endswith("_count")]
            assert count == [2.0]

        _serve(body, cache_dir=str(tmp_path))

    def test_gauges_track_cache_and_retention(self, tmp_path):
        async def body(server, host, port):
            _, _, before = await _raw(host, port, "GET", "/metrics")
            assert parse_prometheus(before)["repro_cache_entries"][
                "samples"][0][2] == 0.0
            await _raw(host, port, "POST", "/v1/schedule", SMALL)
            _, _, after = await _raw(host, port, "GET", "/metrics")
            families = parse_prometheus(after)
            assert families["repro_cache_entries"]["samples"][0][2] == 1.0
            assert families["repro_cache_bytes"]["samples"][0][2] > 0
            retained = families["repro_obs_spans_retained"]["samples"]
            assert retained[0][2] >= 1.0

        _serve(body, cache_dir=str(tmp_path))

    def test_window_gauges_present(self, tmp_path):
        async def body(server, host, port):
            await _raw(host, port, "POST", "/v1/schedule", SMALL)
            _, _, text = await _raw(host, port, "GET", "/metrics")
            families = parse_prometheus(text)
            assert "repro_window_rate_per_second" in families
            assert "repro_window_span_seconds" in families
            names = {labels.get("name") for _m, labels, _v in
                     families["repro_window_latency_seconds"]["samples"]}
            assert "serve.request" in names

        _serve(body, cache_dir=str(tmp_path))

    def test_cacheless_server_still_exposes(self):
        async def body(server, host, port):
            _, _, text = await _raw(host, port, "GET", "/metrics")
            assert validate_exposition(text) == []
            assert "repro_cache_entries" not in parse_prometheus(text)

        _serve(body, cache_dir=None)


class TestReadiness:
    def test_ready_reports_checks(self, tmp_path):
        async def body(server, host, port):
            status, _, text = await _raw(host, port, "GET", "/healthz")
            doc = json.loads(text)
            assert status == 200
            assert doc["ok"] is True
            assert doc["checks"] == {"batcher_running": True,
                                     "cache_dir_writable": True}
            assert doc["max_pending"] == 64
            assert "reason" not in doc

        _serve(body, cache_dir=str(tmp_path))

    def test_dead_batcher_is_503_with_reason(self, tmp_path):
        async def body(server, host, port):
            await server.batcher.stop()
            status, _, text = await _raw(host, port, "GET", "/healthz")
            doc = json.loads(text)
            assert status == 503
            assert doc["ok"] is False
            assert doc["checks"]["batcher_running"] is False
            assert "batcher_running" in doc["reason"]

        _serve(body, cache_dir=str(tmp_path))

    def test_unwritable_cache_dir_is_503(self, tmp_path):
        async def body(server, host, port):
            # A regular file where the cache root should be defeats the
            # mkdir-and-probe even when running as root (chmod alone
            # would not: root ignores permission bits).
            blocker = tmp_path / "blocker"
            blocker.write_text("in the way")
            server.cache.root = blocker
            status, _, text = await _raw(host, port, "GET", "/healthz")
            doc = json.loads(text)
            assert status == 503
            assert doc["checks"]["cache_dir_writable"] is False
            assert "cache_dir_writable" in doc["reason"]

        _serve(body, cache_dir=str(tmp_path / "cache"))

    def test_cacheless_server_skips_cache_check(self):
        async def body(server, host, port):
            status, _, text = await _raw(host, port, "GET", "/healthz")
            doc = json.loads(text)
            assert status == 200
            assert doc["checks"] == {"batcher_running": True}

        _serve(body, cache_dir=None)
