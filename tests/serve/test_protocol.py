"""Unit tests for the schedule service's wire protocol."""

import json

import pytest

from repro.exec.cache import instance_digest
from repro.graphs.analysis import critical_path_length
from repro.graphs.datasets import bundled_names, load_bundled
from repro.serve.protocol import (
    MAX_BODY_BYTES,
    ProtocolError,
    encode_error,
    encode_ok,
    parse_request,
)


def _body(**doc):
    return json.dumps(doc).encode()


EXPLICIT = {"name": "g1", "weights": [3.1e6, 6.2e6, 4.0e6],
            "edges": [[0, 1], [0, 2]]}


class TestParseOk:
    def test_bundled_graph_and_factor(self, platform):
        req = parse_request(_body(graph={"bundled": "robot"},
                                  deadline_factor=2.0, policy="edf"),
                            platform)
        g = load_bundled("robot")
        assert req.graph.name == "robot"
        assert req.deadline_cycles == \
            pytest.approx(2.0 * critical_path_length(g))
        assert req.policy == "edf"

    def test_key_is_the_cache_digest(self, platform):
        """The wire protocol and the store share one identity notion."""
        req = parse_request(_body(graph=EXPLICIT, deadline_cycles=2.0e7),
                            platform)
        assert req.key == instance_digest(
            req.graph, req.deadline_cycles, platform, "edf")

    def test_explicit_graph_round_trips(self, platform):
        req = parse_request(_body(graph=EXPLICIT, deadline_cycles=2.0e7,
                                  policy="hlfet"), platform)
        assert req.graph.n == 3
        assert req.graph.name == "g1"
        assert req.policy == "hlfet"

    def test_scale_applies_to_bundled(self, platform):
        plain = parse_request(_body(graph={"bundled": "robot"},
                                    deadline_factor=2.0), platform)
        scaled = parse_request(_body(graph={"bundled": "robot",
                                            "scale": 3.0},
                                     deadline_factor=2.0), platform)
        assert scaled.deadline_cycles == \
            pytest.approx(3.0 * plain.deadline_cycles)
        assert scaled.key != plain.key

    def test_same_instance_same_key(self, platform):
        a = parse_request(_body(graph=EXPLICIT, deadline_cycles=2.0e7),
                          platform)
        b = parse_request(_body(graph=EXPLICIT, deadline_cycles=2.0e7),
                          platform)
        assert a.key == b.key


class TestParseErrors:
    @pytest.mark.parametrize("body", [
        b"", b"not json", b"[1, 2]", b'"scalar"',
        _body(deadline_cycles=1.0),                     # no graph
        _body(graph={}, deadline_cycles=1.0),           # empty graph spec
        _body(graph={"bundled": "no-such"}, deadline_cycles=1.0),
        _body(graph={"bundled": "robot", "scale": -1.0},
              deadline_cycles=1.0),
        _body(graph=EXPLICIT),                          # no deadline
        _body(graph=EXPLICIT, deadline_cycles=1.0, deadline_factor=2.0),
        _body(graph=EXPLICIT, deadline_cycles=-5.0),
        _body(graph=EXPLICIT, deadline_factor=0),
        _body(graph=EXPLICIT, deadline_cycles=1.0, policy="no-such"),
        _body(graph={"weights": []}, deadline_cycles=1.0),
        _body(graph={"weights": [1.0], "edges": [[0]]},
              deadline_cycles=1.0),
        _body(graph={"weights": [1.0], "edges": [[0, 7]]},
              deadline_cycles=1.0),
        _body(graph={"weights": [1.0, 1.0], "edges": [[0, 1], [1, 0]]},
              deadline_cycles=1.0),                     # cycle
    ])
    def test_malformed_requests_raise(self, body, platform):
        with pytest.raises(ProtocolError):
            parse_request(body, platform)

    def test_oversize_body_refused(self, platform):
        with pytest.raises(ProtocolError, match="too large"):
            parse_request(b" " * (MAX_BODY_BYTES + 1), platform)

    def test_error_message_names_the_policies(self, platform):
        with pytest.raises(ProtocolError, match="edf"):
            parse_request(_body(graph=EXPLICIT, deadline_cycles=1.0,
                                policy="zzz"), platform)


class TestEncode:
    def test_ok_document(self):
        doc = encode_ok("k" * 64, [{"heuristic": "sns"}], cached=True)
        assert doc == {"key": "k" * 64, "cached": True, "deduped": False,
                       "results": [{"heuristic": "sns"}]}

    def test_error_document(self):
        assert encode_error("bad_request", "nope") == \
            {"error": "bad_request", "detail": "nope"}
        assert encode_error("infeasible", "nope", key="abc")["key"] == \
            "abc"

    def test_documents_are_json_clean(self):
        json.dumps(encode_ok("k", [], cached=False, deduped=True))
        json.dumps(encode_error("internal", "boom"))


def test_bundled_names_nonempty():
    assert "robot" in bundled_names()
