"""End-to-end tests of the asyncio schedule server.

Each test boots a real :class:`~repro.serve.app.ScheduleServer` on an
ephemeral port and talks raw HTTP/1.1 over a socket — the same path a
production client takes.  Async bodies run under ``asyncio.run`` (the
suite carries no async test plugin).
"""

import asyncio
import json

from repro.serve import ScheduleServer
from repro.serve.batcher import ScheduleBatcher
from repro.serve.protocol import parse_request

SMALL = {"graph": {"name": "srv", "weights": [3.1e6, 6.2e6, 4.0e6],
                   "edges": [[0, 1], [0, 2]]},
         "deadline_factor": 2.0, "policy": "edf"}


async def _request(host, port, method, target, body=None):
    reader, writer = await asyncio.open_connection(host, port)
    try:
        return await _request_on(reader, writer, method, target, body,
                                 keep_alive=False)
    finally:
        writer.close()


async def _request_on(reader, writer, method, target, body=None, *,
                      keep_alive=True):
    """One HTTP exchange on an open connection; returns (status, doc)."""
    payload = json.dumps(body).encode() if body is not None else b""
    conn = "keep-alive" if keep_alive else "close"
    writer.write((f"{method} {target} HTTP/1.1\r\nHost: t\r\n"
                  f"Content-Length: {len(payload)}\r\n"
                  f"Connection: {conn}\r\n\r\n").encode() + payload)
    await writer.drain()
    head = await reader.readuntil(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    length = 0
    for line in head.split(b"\r\n"):
        if line.lower().startswith(b"content-length:"):
            length = int(line.split(b":", 1)[1])
    doc = json.loads(await reader.readexactly(length)) if length else {}
    return status, doc


def _serve(test_body, **server_kw):
    """Boot a server on port 0, run ``test_body(server, host, port)``."""
    async def main():
        server = ScheduleServer(**server_kw)
        host, port = await server.start(port=0)
        try:
            await test_body(server, host, port)
        finally:
            await server.stop()

    asyncio.run(main())


class TestHttpSurface:
    def test_health_and_routing(self, tmp_path):
        async def body(server, host, port):
            status, doc = await _request(host, port, "GET", "/healthz")
            assert status == 200 and doc["ok"] is True
            assert all(doc["checks"].values())
            status, doc = await _request(host, port, "GET", "/nope")
            assert status == 404 and doc["error"] == "not_found"
            status, doc = await _request(host, port, "GET", "/v1/schedule")
            assert status == 405
            status, doc = await _request(host, port, "POST",
                                         "/v1/schedule", {"bad": 1})
            assert status == 400 and doc["error"] == "bad_request"

        _serve(body, cache_dir=str(tmp_path))

    def test_keep_alive_connection_reuse(self, tmp_path):
        async def body(server, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            try:
                for _ in range(3):
                    status, doc = await _request_on(
                        reader, writer, "GET", "/healthz")
                    assert status == 200 and doc["ok"] is True
            finally:
                writer.close()

        _serve(body, cache_dir=str(tmp_path))

    def test_stats_document_shape(self, tmp_path):
        async def body(server, host, port):
            status, doc = await _request(host, port, "GET", "/stats")
            assert status == 200
            assert set(doc) == {"counters", "latency", "admission",
                                "batcher", "cache", "window", "obs"}
            assert doc["cache"]["enabled"] is True
            assert doc["admission"]["max_pending"] == 64

        _serve(body, cache_dir=str(tmp_path))


class TestScheduling:
    def test_cold_then_warm(self, tmp_path):
        async def body(server, host, port):
            s1, d1 = await _request(host, port, "POST", "/v1/schedule",
                                    SMALL)
            assert s1 == 200 and d1["cached"] is False
            assert len(d1["results"]) == 6  # one per paper heuristic
            dispatches = server.batcher.stats.dispatches

            s2, d2 = await _request(host, port, "POST", "/v1/schedule",
                                    SMALL)
            assert s2 == 200 and d2["cached"] is True
            assert d2["key"] == d1["key"]
            assert d2["results"] == d1["results"]
            # The warm hit never reached the batcher.
            assert server.batcher.stats.dispatches == dispatches
            assert server.obs.counters["serve.warm_hits"] == 1

        _serve(body, cache_dir=str(tmp_path))

    def test_warm_hit_equals_cache_payload(self, tmp_path, platform):
        """A served answer and the cache entry are interchangeable."""
        async def body(server, host, port):
            _, cold = await _request(host, port, "POST", "/v1/schedule",
                                     SMALL)
            request = parse_request(json.dumps(SMALL).encode(), platform)
            assert server.cache.get(request.key) == cold["results"]

        _serve(body, cache_dir=str(tmp_path))

    def test_identical_concurrent_requests_dedupe(self, tmp_path):
        async def body(server, host, port):
            pairs = await asyncio.gather(*[
                _request(host, port, "POST", "/v1/schedule", SMALL)
                for _ in range(4)
            ])
            assert all(status == 200 for status, _ in pairs)
            docs = [doc for _, doc in pairs]
            assert all(doc["results"] == docs[0]["results"]
                       for doc in docs)
            # One computation; the other three piggybacked.
            assert server.batcher.stats.dispatched_instances == 1
            assert server.batcher.stats.deduped == 3

        _serve(body, cache_dir=str(tmp_path), window_seconds=0.01)

    def test_distinct_requests_coalesce_into_one_dispatch(self, tmp_path):
        async def body(server, host, port):
            bodies = [dict(SMALL, deadline_factor=2.0 + i / 4)
                      for i in range(3)]
            pairs = await asyncio.gather(*[
                _request(host, port, "POST", "/v1/schedule", b)
                for b in bodies
            ])
            assert all(status == 200 for status, _ in pairs)
            assert server.batcher.stats.dispatched_instances == 3
            # The linger window folded the burst into one batch.
            assert server.batcher.stats.dispatches == 1
            assert server.batcher.stats.max_batch_seen == 3

        _serve(body, cache_dir=str(tmp_path), window_seconds=0.05)

    def test_infeasible_is_422_and_isolated(self, tmp_path):
        """An infeasible co-batched request fails alone — its batch
        mates still succeed."""
        async def body(server, host, port):
            hopeless = dict(SMALL, deadline_factor=0.25)  # < critical path
            pairs = await asyncio.gather(
                _request(host, port, "POST", "/v1/schedule", SMALL),
                _request(host, port, "POST", "/v1/schedule", hopeless),
            )
            by_status = {status: doc for status, doc in pairs}
            assert set(by_status) == {200, 422}
            assert by_status[422]["error"] == "infeasible"
            assert len(by_status[200]["results"]) == 6
            assert server.batcher.stats.failed_instances == 1

        _serve(body, cache_dir=str(tmp_path), window_seconds=0.05)

    def test_cacheless_server_computes_every_time(self, tmp_path):
        async def body(server, host, port):
            for want_dispatches in (1, 2):
                status, doc = await _request(host, port, "POST",
                                             "/v1/schedule", SMALL)
                assert status == 200 and doc["cached"] is False
                assert server.batcher.stats.dispatches == want_dispatches

        _serve(body, cache_dir=None)


class TestAdmission:
    def test_zero_window_sheds_everything(self, tmp_path):
        async def body(server, host, port):
            status, doc = await _request(host, port, "POST",
                                         "/v1/schedule", SMALL)
            assert status == 429 and doc["error"] == "overloaded"
            assert server.admission.shed == 1
            # Shedding is request-scoped: /stats still answers.
            status, _ = await _request(host, port, "GET", "/stats")
            assert status == 200

        _serve(body, cache_dir=str(tmp_path), max_pending=0)

    def test_served_requests_release_their_slot(self, tmp_path):
        async def body(server, host, port):
            for _ in range(3):
                status, _ = await _request(host, port, "POST",
                                           "/v1/schedule", SMALL)
                assert status == 200
            assert server.admission.pending == 0
            assert server.admission.shed == 0
            assert server.admission.admitted == 3

        _serve(body, cache_dir=str(tmp_path), max_pending=1)


class TestBatcherUnit:
    def test_mixed_policy_burst_splits_dispatches(self, platform):
        """Only same-policy requests share a paper_suite_batch sweep."""
        from repro.exec.runner import ExecOptions

        async def main():
            batcher = ScheduleBatcher(
                ExecOptions(jobs=1, use_cache=False),
                platform=platform, window_seconds=0.05)
            await batcher.start()
            try:
                reqs = [
                    parse_request(json.dumps(
                        dict(SMALL, policy=policy)).encode(), platform)
                    for policy in ("edf", "hlfet", "edf")
                ]
                outs = await asyncio.gather(
                    *[batcher.submit(r) for r in reqs])
            finally:
                await batcher.stop()
            results = [out for out, _ in outs]
            deduped = [flag for _, flag in outs]
            assert all(isinstance(r, list) for r in results)
            assert results[0] == results[2]  # same key → same payload
            assert deduped == [False, False, True]
            # Two policies → two dispatches, never one mixed sweep.
            assert batcher.stats.dispatches == 2
            assert batcher.stats.dispatched_instances == 2

        asyncio.run(main())

    def test_stop_fails_queued_flights(self, platform):
        from repro.exec.runner import ExecOptions

        async def main():
            batcher = ScheduleBatcher(
                ExecOptions(jobs=1, use_cache=False),
                platform=platform, window_seconds=30.0)  # never fires
            await batcher.start()
            request = parse_request(json.dumps(SMALL).encode(), platform)
            waiter = asyncio.ensure_future(batcher.submit(request))
            await asyncio.sleep(0.02)
            await batcher.stop()
            outcome, deduped = await waiter
            assert isinstance(outcome, RuntimeError)

        asyncio.run(main())
