"""Soak the serve telemetry: sustained traffic under a small span
bound must hold memory constant while every counter stays exact.

Drives ``ScheduleServer._route`` directly (no sockets — the routing,
admission, cache and obs layers are the system under test) with four
orders of magnitude more requests than the retention bound.
"""

import asyncio
import json

from repro.obs.metrics import parse_prometheus, validate_exposition
from repro.serve import ScheduleServer

SMALL = {"graph": {"name": "soak", "weights": [3.1e6, 6.2e6, 4.0e6],
                   "edges": [[0, 1], [0, 2]]},
         "deadline_factor": 2.0, "policy": "edf"}

BOUND = 256
REQUESTS = 10_000


def test_soak_bounded_retention_and_exact_counters(tmp_path):
    body = json.dumps(SMALL).encode()

    async def main():
        server = ScheduleServer(cache_dir=str(tmp_path),
                                obs_max_spans=BOUND)
        await server.batcher.start()
        try:
            # One cold compute, then warm hits only: the soak measures
            # the telemetry layer, not the scheduler.
            status, doc = await server._route("POST", "/v1/schedule",
                                              body)
            assert status == 200 and doc["cached"] is False
            for i in range(REQUESTS - 1):
                status, doc = await server._route("POST", "/v1/schedule",
                                                  body)
                assert status == 200 and doc["cached"] is True
                if i % 2000 == 0:
                    # Interleaved scrapes: sampling the window and
                    # rendering must not disturb retention or counts.
                    assert validate_exposition(
                        server.metrics_document()) == []

            # Retention held: the ring never grew past its bound even
            # though ~40x more spans were recorded.
            assert len(server.obs.spans) <= BOUND
            assert server.obs.evicted_spans > 0
            assert (len(server.obs.spans) + server.obs.evicted_spans
                    >= REQUESTS)

            # Counters stayed exact despite span eviction.
            assert server.obs.counters["serve.requests"] == REQUESTS
            assert server.obs.counters["serve.warm_hits"] == \
                REQUESTS - 1
            assert server.obs.counters["serve.computed"] == 1
            hist = server.obs.histograms["serve.request"]
            assert hist.count == REQUESTS

            # Evicted aggregates account for every dropped span.
            evicted_calls = sum(
                agg["calls"]
                for agg in server.obs.evicted_aggregates.values())
            assert evicted_calls == server.obs.evicted_spans

            # /stats and /metrics agree with the in-process state.
            stats = server.stats_document()
            assert stats["counters"]["serve.requests"] == REQUESTS
            assert stats["obs"]["spans_retained"] == \
                len(server.obs.spans)
            assert stats["obs"]["max_spans"] == BOUND
            assert stats["obs"]["evicted_spans"] == \
                server.obs.evicted_spans

            text = server.metrics_document()
            assert validate_exposition(text) == []
            families = parse_prometheus(text)
            assert families["repro_serve_requests_total"]["samples"][
                0][2] == float(REQUESTS)
            assert families["repro_obs_spans_retained"]["samples"][
                0][2] <= BOUND
            assert families["repro_obs_evicted_spans_total"]["samples"][
                0][2] == float(server.obs.evicted_spans)
        finally:
            await server.batcher.stop()

    asyncio.run(main())


def test_soak_unbounded_log_keeps_everything(tmp_path):
    """The campaign-mode default (max_spans=None) still captures all."""
    body = json.dumps(SMALL).encode()

    async def main():
        server = ScheduleServer(cache_dir=str(tmp_path),
                                obs_max_spans=None)
        await server.batcher.start()
        try:
            for _ in range(500):
                status, _ = await server._route("POST", "/v1/schedule",
                                                body)
                assert status == 200
            assert server.obs.evicted_spans == 0
            request_spans = [s for s in server.obs.spans
                             if s.name == "serve.request"]
            assert len(request_spans) == 500
        finally:
            await server.batcher.stop()

    asyncio.run(main())
