"""The repro top dashboard renderer — pure-function tests, no socket."""

import io

from repro.serve.top import _rate, render_frame, run_top


def _doc(**overrides):
    doc = {
        "counters": {"serve.requests": 200, "serve.warm_hits": 150,
                     "serve.deduped": 10, "serve.shed": 4,
                     "serve.computed": 36},
        "window": {
            "window_seconds": 60.0,
            "elapsed_seconds": 10.0,
            "samples": 5,
            "rates_per_second": {"serve.requests": 12.5},
            "latency": {
                "serve.request": {"count": 125, "total_seconds": 1.0,
                                  "p50_seconds": 0.004,
                                  "p90_seconds": 0.012,
                                  "p99_seconds": 0.040},
                "serve.dispatch_seconds": {"count": 3,
                                           "total_seconds": 2.5,
                                           "p50_seconds": 0.8,
                                           "p90_seconds": 1.0,
                                           "p99_seconds": 1.0},
            },
        },
        "admission": {"pending": 2, "max_pending": 64,
                      "peak_pending": 9, "shed": 4, "admitted": 196},
        "batcher": {"dispatches": 30, "max_batch_seen": 6,
                    "failed_instances": 1, "deduped": 10,
                    "dispatched_instances": 36, "empty_dispatches": 0},
        "cache": {"enabled": True, "hits": 150, "misses": 36,
                  "bytes": 90_000, "evictions": 2},
        "obs": {"spans_retained": 256, "max_spans": 256,
                "evicted_spans": 1234},
    }
    doc.update(overrides)
    return doc


class TestRenderFrame:
    def test_frame_contains_headline_numbers(self):
        frame = render_frame(_doc(), source="http://h:1")
        assert "repro top — http://h:1" in frame
        assert "200 total" in frame
        assert "12.5 req/s" in frame  # server window rate
        assert "75.0%" in frame       # warm hits of requests
        assert "evictions 2" in frame
        assert "256 spans retained" in frame
        assert "1234 evicted" in frame

    def test_latency_line_scales_to_ms(self):
        frame = render_frame(_doc())
        assert "p50     4.00 ms" in frame
        assert "p99    40.00 ms" in frame

    def test_occupancy_is_dispatch_over_window(self):
        frame = render_frame(_doc())
        # 2.5 s busy over a 10 s window.
        assert "occupancy   25.0%" in frame

    def test_empty_doc_renders_without_crashing(self):
        frame = render_frame({})
        assert "repro top" in frame
        assert "0 total" in frame

    def test_unbounded_retention_shows_infinity(self):
        doc = _doc(obs={"spans_retained": 7, "max_spans": None,
                        "evicted_spans": 0})
        assert "bound ∞" in render_frame(doc)


class TestRate:
    def test_prefers_server_window_rate(self):
        assert _rate(_doc(), None, None, "serve.requests") == 12.5

    def test_falls_back_to_client_delta(self):
        doc = _doc(window={})
        prev = {"counters": {"serve.requests": 100}}
        assert _rate(doc, prev, 10.0, "serve.requests") == 10.0

    def test_no_history_means_zero(self):
        assert _rate(_doc(window={}), None, None, "serve.requests") == 0.0


class TestRunTop:
    def test_unreachable_server_exits_nonzero(self):
        out = io.StringIO()
        code = run_top("http://127.0.0.1:9", interval_seconds=0.01,
                       iterations=1, out=out)
        assert code == 1

    def test_iterations_bound_polling(self, monkeypatch):
        calls = []

        def fake_fetch(url, *, timeout=5.0):
            calls.append(url)
            return _doc()

        monkeypatch.setattr("repro.serve.top.fetch_stats", fake_fetch)
        out = io.StringIO()
        code = run_top("http://fake", interval_seconds=0.0,
                       iterations=3, out=out)
        assert code == 0
        assert len(calls) == 3
        assert "repro top — http://fake" in out.getvalue()
