#!/usr/bin/env python
"""Append one timestamped benchmark row to ``BENCH_trajectory.jsonl``.

The committed trajectory file records how the repository's headline
throughput numbers move across PRs: each line is a self-contained JSON
object with the UTC timestamp, the git revision it was measured at,
and the metrics of the families requested (by default the two campaign
numbers the perf work is gated on — the runner's ``batch_serial_s`` and
the plan-cache ``suite_batch_s``).  Appending a fresh row after a perf
PR keeps the history reviewable in-line with the diff that produced it:

    python tools/bench_trajectory.py            # campaign + suite
    python tools/bench_trajectory.py --families suite
    python tools/bench_trajectory.py --out /tmp/row.jsonl --no-append

Rows are append-only — the tool never rewrites previous lines, so the
file is safe to merge and the history cannot be silently revised.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

import perf_smoke  # noqa: E402  (tools/ sibling import)

TRAJECTORY = REPO / "BENCH_trajectory.jsonl"

FAMILIES = {
    "campaign": lambda: perf_smoke.measure_campaign(),
    "suite": lambda: perf_smoke.measure_suite(),
}


def git_revision() -> str:
    """Short hash of HEAD, with a ``-dirty`` suffix when unclean."""
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=REPO,
            capture_output=True, text=True, check=True,
            timeout=30).stdout.strip()
        dirty = subprocess.run(
            ["git", "status", "--porcelain"], cwd=REPO,
            capture_output=True, text=True, check=True,
            timeout=30).stdout.strip()
        return rev + ("-dirty" if dirty else "")
    except Exception:  # pragma: no cover - not a git checkout
        return "unknown"


def measure_row(families) -> dict:
    row = {
        "ts": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "rev": git_revision(),
        "metrics": {},
    }
    for family in families:
        row["metrics"][family] = FAMILIES[family]()
    return row


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--families", nargs="+", default=["campaign", "suite"],
                    choices=sorted(FAMILIES),
                    help="benchmark families to record")
    ap.add_argument("--out", type=Path, default=TRAJECTORY,
                    help="trajectory file (default: committed "
                         "BENCH_trajectory.jsonl)")
    ap.add_argument("--no-append", action="store_true",
                    help="overwrite instead of appending (for scratch "
                         "files only; the committed trajectory is "
                         "append-only)")
    args = ap.parse_args(argv)

    row = measure_row(args.families)
    line = json.dumps(row, sort_keys=True)
    mode = "w" if args.no_append else "a"
    with open(args.out, mode) as f:
        f.write(line + "\n")
    print(f"[bench-trajectory] {line}")
    print(f"[bench-trajectory] wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
