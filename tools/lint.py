#!/usr/bin/env python3
"""Run the project lint pass (thin wrapper over ``repro lint``).

Usage mirrors the CLI subcommand::

    python tools/lint.py src/            # lint the tree
    python tools/lint.py --list-rules    # show the rule table

The wrapper makes ``src/`` importable so CI can run it without an
installed package.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.lint.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
