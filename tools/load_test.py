#!/usr/bin/env python
"""Load-test the schedule service and emit a latency/behaviour baseline.

Drives a running ``repro serve`` instance (or ``--spawn``s one on an
ephemeral port) with raw asyncio HTTP clients through four phases:

* **cold** — ``--instances`` distinct requests at ``--clients``-way
  concurrency: every one is a computed miss that warms the cache;
* **warm** — the same requests again: every one must be answered from
  the cache *without a single batcher dispatch* (asserted from the
  ``/stats`` delta);
* **dedupe** — ``--clients`` *identical* concurrent requests for a
  fresh instance: the server must coalesce them onto one computation
  (``serve.deduped`` >= clients-1, one dispatched instance);
* **churn** — a stream of fresh instances against a ``--max-bytes``
  bounded cache: afterwards the tree must measure at or under the
  bound;
* **metrics** — scrape ``GET /metrics`` before the cold phase and
  after churn: both expositions must pass
  :func:`repro.obs.metrics.validate_exposition`, and the
  ``repro_serve_requests_total`` counter must have advanced by the
  number of requests the harness sent (``--metrics-out`` saves the
  final exposition for offline checking).

Latency is reported per phase as p50/p99 milliseconds over per-request
wall clock.  Results are written as JSON (``--out``), matching the
committed ``BENCH_serve_baseline.json`` schema; ``--check`` turns the
behavioural assertions into the exit code, which is how the CI
serve-smoke job gates the service.

Usage:
    python tools/load_test.py --spawn --check \\
        --out BENCH_serve_baseline.json
    python tools/load_test.py --url http://127.0.0.1:8642
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.obs.metrics import parse_prometheus  # noqa: E402
from repro.obs.metrics import validate_exposition  # noqa: E402

#: Three-task explicit request graphs: big enough to exercise the full
#: six-heuristic suite, small enough that the harness measures the
#: service, not the scheduler.
BASE_WEIGHTS = [3.1e6, 6.2e6, 4.0e6]
EDGES = [[0, 1], [0, 2]]


def instance_body(i: int) -> dict:
    """The ``i``-th distinct request (weights vary, so keys do)."""
    weights = list(BASE_WEIGHTS)
    weights[2] += 1.0e4 * i
    return {"graph": {"name": f"load-{i}", "weights": weights,
                      "edges": EDGES},
            "deadline_factor": 2.0, "policy": "edf"}


# ----------------------------------------------------------------------
# Raw HTTP client
# ----------------------------------------------------------------------
async def request(host: str, port: int, method: str, target: str,
                  body: Optional[dict] = None) -> Tuple[int, dict]:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        payload = json.dumps(body).encode() if body is not None else b""
        writer.write((f"{method} {target} HTTP/1.1\r\nHost: load\r\n"
                      f"Content-Length: {len(payload)}\r\n"
                      f"Connection: close\r\n\r\n").encode() + payload)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
    head, _, rest = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, json.loads(rest) if rest else {}


async def request_text(host: str, port: int, target: str
                       ) -> Tuple[int, str]:
    """GET a non-JSON endpoint (``/metrics``) and return the raw body."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write((f"GET {target} HTTP/1.1\r\nHost: load\r\n"
                      f"Content-Length: 0\r\n"
                      f"Connection: close\r\n\r\n").encode())
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
    head, _, rest = raw.partition(b"\r\n\r\n")
    return int(head.split(b" ", 2)[1]), rest.decode()


async def timed_schedule(host: str, port: int, body: dict,
                         latencies: List[float]) -> Tuple[int, dict]:
    t0 = time.perf_counter()
    status, doc = await request(host, port, "POST", "/v1/schedule", body)
    latencies.append(time.perf_counter() - t0)
    return status, doc


async def fan_out(host: str, port: int, bodies: List[dict],
                  clients: int, latencies: List[float]) -> List[dict]:
    """Run ``bodies`` through at most ``clients`` concurrent requests."""
    sem = asyncio.Semaphore(clients)
    docs: List[dict] = [{}] * len(bodies)

    async def one(i: int, body: dict) -> None:
        async with sem:
            status, doc = await timed_schedule(host, port, body, latencies)
            if status != 200:
                raise RuntimeError(
                    f"request {i} failed: {status} {doc}")
            docs[i] = doc

    await asyncio.gather(*[one(i, b) for i, b in enumerate(bodies)])
    return docs


def percentile(samples: List[float], q: float) -> float:
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[idx]


def phase_stats(latencies: List[float]) -> Dict[str, Any]:
    return {"requests": len(latencies),
            "p50_ms": round(percentile(latencies, 0.50) * 1e3, 3),
            "p99_ms": round(percentile(latencies, 0.99) * 1e3, 3),
            "total_s": round(sum(latencies), 4)}


def counter_total(exposition: str, family: str) -> float:
    """Sum every sample of one family in a parsed exposition."""
    fam = parse_prometheus(exposition).get(family)
    if fam is None:
        return 0.0
    return sum(value for _name, _labels, value in fam["samples"])


# ----------------------------------------------------------------------
# The scenario
# ----------------------------------------------------------------------
async def run_load(host: str, port: int, *, instances: int, clients: int,
                   churn: int, max_bytes: Optional[int]) -> dict:
    status, _ = await request(host, port, "GET", "/healthz")
    if status != 200:
        raise RuntimeError(f"server unhealthy: {status}")

    report: Dict[str, Any] = {"phases": {}, "checks": {}}

    # Phase 0: scrape /metrics cold — the exposition must already be
    # valid before any schedule traffic exists (empty-histogram case).
    status, cold_metrics = await request_text(host, port, "/metrics")
    report["checks"]["metrics_status"] = status
    report["checks"]["metrics_cold_violations"] = \
        validate_exposition(cold_metrics) if status == 200 else \
        ["scrape failed"]
    requests_before = counter_total(cold_metrics,
                                    "repro_serve_requests_total")

    async def stats() -> dict:
        return (await request(host, port, "GET", "/stats"))[1]

    # Phase 1: cold — every request computes and warms the cache.
    cold_lat: List[float] = []
    bodies = [instance_body(i) for i in range(instances)]
    docs = await fan_out(host, port, bodies, clients, cold_lat)
    report["phases"]["cold"] = phase_stats(cold_lat)
    report["checks"]["cold_all_uncached"] = \
        all(not d["cached"] for d in docs)

    # Phase 2: warm — same instances; zero dispatches allowed.
    before = await stats()
    warm_lat: List[float] = []
    docs = await fan_out(host, port, bodies, clients, warm_lat)
    after = await stats()
    report["phases"]["warm"] = phase_stats(warm_lat)
    report["checks"]["warm_all_cached"] = all(d["cached"] for d in docs)
    dispatch_delta = (after["batcher"]["dispatches"]
                      - before["batcher"]["dispatches"])
    report["checks"]["warm_dispatches"] = dispatch_delta
    warm_hits = (after["counters"].get("serve.warm_hits", 0)
                 - before["counters"].get("serve.warm_hits", 0))
    report["checks"]["warm_hits"] = warm_hits

    # Phase 3: dedupe — identical concurrent requests, one computation.
    before = await stats()
    burst_lat: List[float] = []
    fresh = instance_body(instances + 1)
    docs = await fan_out(host, port, [fresh] * clients, clients,
                         burst_lat)
    after = await stats()
    report["phases"]["dedupe"] = phase_stats(burst_lat)
    report["checks"]["deduped"] = (
        after["counters"].get("serve.deduped", 0)
        - before["counters"].get("serve.deduped", 0))
    report["checks"]["dedupe_dispatched_instances"] = (
        after["batcher"]["dispatched_instances"]
        - before["batcher"]["dispatched_instances"])

    # Phase 4: churn — fresh instances against the size-bounded cache.
    churn_lat: List[float] = []
    bodies = [instance_body(1000 + i) for i in range(churn)]
    await fan_out(host, port, bodies, clients, churn_lat)
    final = await stats()
    report["phases"]["churn"] = phase_stats(churn_lat)
    cache = final["cache"]
    report["checks"]["cache_bytes"] = cache.get("bytes")
    report["checks"]["cache_max_bytes"] = cache.get("max_bytes",
                                                    max_bytes)
    report["checks"]["cache_evictions"] = cache.get("evictions", 0)
    report["final_stats"] = final

    # Phase 5: scrape /metrics warm — still valid, and the request
    # counter must have advanced by everything the harness sent.
    status, warm_metrics = await request_text(host, port, "/metrics")
    report["checks"]["metrics_warm_violations"] = \
        validate_exposition(warm_metrics) if status == 200 else \
        ["scrape failed"]
    sent = 2 * instances + clients + churn
    report["checks"]["metrics_requests_delta"] = (
        counter_total(warm_metrics, "repro_serve_requests_total")
        - requests_before)
    report["checks"]["metrics_requests_expected"] = sent
    report["metrics_exposition"] = warm_metrics
    return report


def verify(report: dict, *, clients: int, instances: int) -> List[str]:
    """Behavioural gate: returns human-readable failures (empty = ok)."""
    checks = report["checks"]
    failures = []
    if not checks["cold_all_uncached"]:
        failures.append("cold phase served cached answers")
    if not checks["warm_all_cached"]:
        failures.append("warm phase recomputed instead of cache-hitting")
    if checks["warm_dispatches"] != 0:
        failures.append(
            f"warm phase dispatched {checks['warm_dispatches']} "
            f"batches; warm hits must not touch a worker")
    if checks["warm_hits"] < instances:
        failures.append(
            f"warm phase produced {checks['warm_hits']} warm hits, "
            f"expected >= {instances}")
    if clients >= 2 and checks["deduped"] < 1:
        failures.append("identical concurrent requests were not deduped")
    if checks["dedupe_dispatched_instances"] > 1:
        failures.append(
            f"dedupe burst dispatched "
            f"{checks['dedupe_dispatched_instances']} instances, "
            f"expected one computation")
    max_bytes = checks.get("cache_max_bytes")
    if max_bytes is not None:
        if checks["cache_bytes"] is None:
            failures.append("server reports no cache size")
        elif checks["cache_bytes"] > max_bytes:
            failures.append(
                f"cache {checks['cache_bytes']}B exceeds the "
                f"{max_bytes}B bound after sustained churn")
        if checks["cache_evictions"] == 0:
            failures.append(
                "sustained churn never triggered an eviction — the "
                "bound was not exercised (raise --churn or lower "
                "--max-bytes)")
    if checks.get("metrics_status") != 200:
        failures.append(
            f"GET /metrics answered {checks.get('metrics_status')}")
    for phase in ("cold", "warm"):
        for violation in checks.get(f"metrics_{phase}_violations", []):
            failures.append(f"{phase} /metrics exposition: {violation}")
    delta = checks.get("metrics_requests_delta")
    expected = checks.get("metrics_requests_expected")
    if delta is not None and delta != expected:
        failures.append(
            f"repro_serve_requests_total advanced by {delta}, "
            f"expected {expected} (one per schedule request sent)")
    return failures


# ----------------------------------------------------------------------
# Spawn mode
# ----------------------------------------------------------------------
_LISTEN_RE = re.compile(r"listening on http://([\d.]+):(\d+)")


def spawn_server(max_bytes: int, cache_dir: str
                 ) -> Tuple[subprocess.Popen, str, int]:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(REPO / "src"), env.get("PYTHONPATH", "")) if p)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--cache-dir", cache_dir, "--cache-max-bytes", str(max_bytes)],
        env=env, stderr=subprocess.PIPE, text=True)
    assert proc.stderr is not None
    deadline = time.time() + 60
    while time.time() < deadline:
        line = proc.stderr.readline()
        if not line and proc.poll() is not None:
            raise RuntimeError("server exited before listening")
        match = _LISTEN_RE.search(line)
        if match:
            return proc, match.group(1), int(match.group(2))
    proc.kill()
    raise RuntimeError("server did not report a listen address in time")


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--url", default=None,
                    help="running server, e.g. http://127.0.0.1:8642")
    ap.add_argument("--spawn", action="store_true",
                    help="boot a 'repro serve' subprocess on an "
                         "ephemeral port with a temporary cache")
    ap.add_argument("--clients", type=int, default=8,
                    help="concurrent client connections (default: 8)")
    ap.add_argument("--instances", type=int, default=24,
                    help="distinct instances in the cold/warm phases")
    ap.add_argument("--churn", type=int, default=60,
                    help="fresh instances streamed at the bounded cache")
    ap.add_argument("--max-bytes", type=int, default=120_000,
                    help="cache bound for --spawn mode (default: 120kB "
                         "— above the cold working set of ~24 entries "
                         "at ~2.6kB, below the total churn traffic, so "
                         "warm hits survive and churn must evict)")
    ap.add_argument("--out", type=Path, default=None,
                    help="write the report JSON here")
    ap.add_argument("--metrics-out", type=Path, default=None,
                    help="write the final /metrics exposition here "
                         "(feed it to tools/validate_metrics.py)")
    ap.add_argument("--check", action="store_true",
                    help="fail (exit 1) when a behavioural check fails")
    args = ap.parse_args(argv)

    if args.spawn == (args.url is not None):
        ap.error("exactly one of --url / --spawn is required")

    proc = None
    tmp = None
    if args.spawn:
        tmp = tempfile.TemporaryDirectory(prefix="repro-serve-load-")
        proc, host, port = spawn_server(args.max_bytes, tmp.name)
    else:
        match = re.match(r"https?://([^:/]+):(\d+)", args.url)
        if not match:
            ap.error(f"unparseable --url {args.url!r}")
        host, port = match.group(1), int(match.group(2))

    try:
        report = asyncio.run(run_load(
            host, port, instances=args.instances, clients=args.clients,
            churn=args.churn,
            max_bytes=args.max_bytes if args.spawn else None))
    finally:
        if proc is not None:
            proc.send_signal(signal.SIGINT)
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
        if tmp is not None:
            tmp.cleanup()

    doc = {
        "description": "Latency and behaviour baseline of the repro "
                       "serve schedule service under tools/load_test.py "
                       "(cold / warm / dedupe / churn phases; see the "
                       "script docstring).",
        "command": "python tools/load_test.py --spawn --check "
                   "--out BENCH_serve_baseline.json",
        "config": {"clients": args.clients, "instances": args.instances,
                   "churn": args.churn, "max_bytes": args.max_bytes},
        "phases": report["phases"],
        "checks": report["checks"],
        "counters": report["final_stats"]["counters"],
    }
    for name, stats in report["phases"].items():
        print(f"[load-test] {name}: {stats['requests']} reqs  "
              f"p50={stats['p50_ms']}ms  p99={stats['p99_ms']}ms")
    print(f"[load-test] checks: "
          f"{json.dumps(report['checks'], sort_keys=True)}")

    if args.out is not None:
        args.out.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"[load-test] wrote {args.out}")
    if args.metrics_out is not None:
        args.metrics_out.write_text(report["metrics_exposition"])
        print(f"[load-test] wrote {args.metrics_out}")

    failures = verify(report, clients=args.clients,
                      instances=args.instances)
    for failure in failures:
        print(f"[load-test] FAIL {failure}", file=sys.stderr)
    if args.check and failures:
        return 1
    if not failures:
        print("[load-test] all behavioural checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
