#!/usr/bin/env python
"""Kernel perf smoke: schedule build + full-ladder sweep + suite timing.

Measures the three hot-path costs the array-native schedule kernel
targets, on the same instances as
``benchmarks/bench_scheduler_scaling.py``:

* ``build_s`` — one ``list_schedule`` of an ``n``-task STG graph onto
  16 processors;
* ``sweep_s`` — evaluating the whole feasible DVS ladder (with the
  sleep model) on that schedule, via
  :func:`repro.core.energy.schedule_energy_sweep` when present and a
  per-point ``schedule_energy`` loop otherwise (so the script also runs
  on pre-kernel checkouts to produce comparable "before" numbers);
* ``paper_suite_s`` — the full six-heuristic suite (skipped for the
  largest sizes).

Timings are best-of-``reps`` ``perf_counter`` wall-clock.  With
``--baseline``, each metric is gated against the ``after`` section of a
committed baseline JSON (see ``BENCH_kernel_baseline.json``) with a
generous regression factor — CI catches order-of-magnitude slips, not
runner noise.

``--campaign`` switches to the campaign-throughput benchmark behind
``BENCH_batch_baseline.json``: a fixed ~160-instance fig10-style
instance set pushed through :func:`repro.exec.runner
.evaluate_suite_instances` per-instance serially (``serial_s``, the
"before" path), through the batched chunk evaluator (``batch_serial_s``)
and through the batched evaluator with a 4-worker shared-memory pool
(``batch_jobs4_shm_s``).

``--suite`` measures the plan-cache campaign path itself:
:func:`repro.core.suite.paper_suite_batch` over the same 160 instances
(the number gated against ``BENCH_suite_baseline.json``).  ``--all``
runs every family.

Usage:
    python tools/perf_smoke.py --sizes 100 1000 --out perf.json
    python tools/perf_smoke.py --sizes 100 \
        --baseline BENCH_kernel_baseline.json --max-regression 3.0
    python tools/perf_smoke.py --campaign \
        --baseline BENCH_batch_baseline.json --max-regression 3.0
    python tools/perf_smoke.py --suite \
        --baseline BENCH_suite_baseline.json --max-regression 3.0
    python tools/perf_smoke.py --all
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.platform import default_platform          # noqa: E402
from repro.core.stretch import feasible_points, required_frequency  # noqa: E402
from repro.core.suite import paper_suite                  # noqa: E402
from repro.graphs.analysis import critical_path_length    # noqa: E402
from repro.graphs.generators import stg_random_graph      # noqa: E402
from repro.sched.deadlines import task_deadlines          # noqa: E402
from repro.sched.list_scheduler import list_schedule      # noqa: E402

try:
    from repro.core.energy import schedule_energy_sweep
except ImportError:  # pre-kernel checkout: fall back to the scalar loop
    from repro.core.energy import schedule_energy

    def schedule_energy_sweep(schedule, points, deadline_seconds, *,
                              sleep=None):
        return [schedule_energy(schedule, p, deadline_seconds, sleep=sleep)
                for p in points]


N_PROCESSORS = 16
SEED = 7
SCALE = 3.1e6  # cycles per unit weight — the paper's STG scaling
SUITE_CAP = 1000  # paper_suite is skipped above this size


def _best_of(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure_size(n: int, *, with_suite: bool = True) -> dict:
    reps = 50 if n <= 100 else (10 if n <= 1000 else 3)
    platform = default_platform()
    g = stg_random_graph(n, SEED).scaled(SCALE)
    deadline = 2.0 * critical_path_length(g)
    d = task_deadlines(g, deadline)
    window = platform.seconds(deadline)

    list_schedule(g, N_PROCESSORS, d)  # warm caches before timing
    build_s = _best_of(lambda: list_schedule(g, N_PROCESSORS, d), reps)

    s = list_schedule(g, N_PROCESSORS, d)
    f_req = required_frequency(s, d, platform.fmax)
    points = feasible_points(platform.ladder, f_req)
    sweep_s = _best_of(
        lambda: schedule_energy_sweep(s, points, window,
                                      sleep=platform.sleep), reps)

    out = {"build_s": build_s, "sweep_s": sweep_s,
           "ladder_points": len(points)}
    if with_suite and n <= SUITE_CAP:
        suite_reps = 20 if n <= 100 else 5
        paper_suite(g, deadline, platform=platform)
        out["paper_suite_s"] = _best_of(
            lambda: paper_suite(g, deadline, platform=platform), suite_reps)
    return out


CAMPAIGN_SIZES = (100, 150, 200, 250)
CAMPAIGN_SEEDS = 40  # 4 sizes x 40 seeds = 160 instances
CAMPAIGN_DEADLINE_FACTOR = 2.0


def _campaign_instances() -> list:
    return [
        (g, CAMPAIGN_DEADLINE_FACTOR * critical_path_length(g))
        for n in CAMPAIGN_SIZES
        for g in (stg_random_graph(n, seed).scaled(SCALE)
                  for seed in range(CAMPAIGN_SEEDS))
    ]


def measure_campaign(reps: int = 2) -> dict:
    """Campaign throughput: per-instance serial vs batched vs parallel.

    ``serial_s`` exercises the historical per-instance path
    (``batch=False``), the "before" of the batched-kernel work;
    ``batch_serial_s`` the chunked broadcast evaluation in-process; and
    ``batch_jobs4_shm_s`` the same chunks fanned over a 4-worker pool
    with the shared-memory result transport.  All three produce
    byte-identical results (tests/exec/test_identity_regression.py),
    so this measures cost, not behaviour.
    """
    from repro.exec.runner import ExecOptions, evaluate_suite_instances

    instances = _campaign_instances()

    def run(**kwargs):
        evaluate_suite_instances(
            instances, options=ExecOptions(use_cache=False, **kwargs))

    run(jobs=1, batch=True)  # warm every lazy import before timing
    out = {"instances": len(instances)}
    out["serial_s"] = _best_of(lambda: run(jobs=1, batch=False), reps)
    out["batch_serial_s"] = _best_of(lambda: run(jobs=1, batch=True),
                                     reps)
    out["batch_jobs4_shm_s"] = _best_of(
        lambda: run(jobs=4, batch=True, shm=True), reps)
    return out


def measure_suite(reps: int = 3) -> dict:
    """Suite-campaign throughput: the plan-cache + batched-sweep path.

    Times :func:`repro.core.suite.paper_suite_batch` directly on the
    fixed 160-instance campaign — the number the plan-memoization work
    (PR 9) optimizes, gated in CI against ``BENCH_suite_baseline.json``
    (whose ``before`` section holds the pre-plan-cache
    ``batch_serial_s`` from ``BENCH_batch_baseline.json``).
    """
    from repro.core.suite import paper_suite_batch

    instances = _campaign_instances()
    paper_suite_batch(instances[:4])  # warm lazy imports and kernels
    best = _best_of(lambda: paper_suite_batch(instances), reps)
    return {"instances": len(instances), "suite_batch_s": best,
            "instances_per_s": len(instances) / best}


def gate(results: dict, baseline: dict, max_regression: float) -> list:
    """Return a list of human-readable gate failures (empty = pass)."""
    failures = []
    reference = baseline.get("after", baseline)
    for size, metrics in results.items():
        base = reference.get(size)
        if base is None:
            continue
        for name, value in metrics.items():
            if not name.endswith("_s"):
                continue
            allowed = base.get(name)
            if allowed is None:
                continue
            if value > allowed * max_regression:
                failures.append(
                    f"size {size}: {name} {value:.6f}s exceeds "
                    f"{max_regression:g}x baseline {allowed:.6f}s")
    return failures


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--sizes", type=int, nargs="+", default=[100, 1000])
    ap.add_argument("--out", type=Path, default=None,
                    help="write measured metrics as JSON")
    ap.add_argument("--baseline", type=Path, default=None,
                    help="baseline JSON to gate against (its 'after' "
                         "section, or the whole file if absent)")
    ap.add_argument("--max-regression", type=float, default=3.0,
                    help="fail when a metric exceeds this multiple of "
                         "the baseline (default: 3.0)")
    ap.add_argument("--no-suite", action="store_true",
                    help="skip the paper_suite timing")
    ap.add_argument("--campaign", action="store_true",
                    help="measure campaign throughput (serial vs "
                         "batched vs parallel+shm) instead of the "
                         "per-size kernel metrics")
    ap.add_argument("--suite", action="store_true",
                    help="measure the plan-cache suite-campaign "
                         "throughput (paper_suite_batch on the fixed "
                         "160-instance campaign)")
    ap.add_argument("--all", action="store_true",
                    help="run every benchmark family (sizes, campaign "
                         "and suite)")
    args = ap.parse_args(argv)

    def emit(section: str, metrics: dict) -> None:
        row = "  ".join(f"{k}={v:.6f}" if isinstance(v, float) else
                        f"{k}={v}" for k, v in metrics.items())
        print(f"[perf-smoke] {section}: {row}")

    results = {}
    if args.all or not (args.campaign or args.suite):
        for n in args.sizes:
            results[str(n)] = measure_size(n, with_suite=not args.no_suite)
            emit(f"n={n}", results[str(n)])
    if args.campaign or args.all:
        results["campaign"] = measure_campaign()
        emit("campaign", results["campaign"])
    if args.suite or args.all:
        results["suite"] = measure_suite()
        emit("suite", results["suite"])

    if args.out is not None:
        args.out.write_text(json.dumps(results, indent=2) + "\n")
        print(f"[perf-smoke] wrote {args.out}")

    if args.baseline is not None:
        baseline = json.loads(args.baseline.read_text())
        failures = gate(results, baseline, args.max_regression)
        for f in failures:
            print(f"[perf-smoke] FAIL {f}", file=sys.stderr)
        if failures:
            return 1
        print(f"[perf-smoke] within {args.max_regression:g}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
