#!/usr/bin/env python
"""Validate a Prometheus text-exposition document.

The CI gate for the serve ``/metrics`` endpoint: parse the exposition,
enforce the contracts dashboards rely on (finite values, ``*_total``
counters, cumulative histogram buckets consistent with ``_count``), and
list every violation.  Reads a file argument or stdin:

    python tools/validate_metrics.py serve-metrics.prom
    curl -s localhost:8642/metrics | python tools/validate_metrics.py

Exit code 0 when valid, 1 with one violation per line otherwise.  The
checker itself lives in :func:`repro.obs.metrics.validate_exposition`,
so tests, this tool and the load-test client all agree on validity.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.obs.metrics import parse_prometheus, validate_exposition  # noqa: E402


def main(argv: "list[str] | None" = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) > 1:
        print("usage: validate_metrics.py [exposition-file]",
              file=sys.stderr)
        return 2
    if argv and argv[0] != "-":
        text = Path(argv[0]).read_text()
        source = argv[0]
    else:
        text = sys.stdin.read()
        source = "<stdin>"
    failures = validate_exposition(text)
    if failures:
        for failure in failures:
            print(f"{source}: {failure}", file=sys.stderr)
        return 1
    families = parse_prometheus(text)
    samples = sum(len(f["samples"]) for f in families.values())
    print(f"{source}: OK — {len(families)} metric families, "
          f"{samples} samples")
    return 0


if __name__ == "__main__":
    sys.exit(main())
