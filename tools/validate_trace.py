#!/usr/bin/env python
"""Validate a repro ``--profile`` trace file and snapshot its timings.

Checks the Chrome Trace Event Format schema that Perfetto relies on
(complete ``"ph": "X"`` events with ``name``/``ts``/``dur``/``pid``/
``tid``, ``process_name`` metadata per pid) plus the repro-specific
contract (the ``reproObs`` block with counters, histograms and span
aggregates; with ``--jobs > 1`` expected, at least two distinct pids).
Exits non-zero with a message on the first violation — the CI
profiling smoke job runs this against a fresh campaign trace.

Usage::

    python tools/validate_trace.py trace.json [--min-pids 2]
        [--baseline-out BENCH_profile_baseline.json]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REQUIRED_X_KEYS = {"name", "ph", "ts", "dur", "pid", "tid"}


def fail(msg: str) -> "None":
    raise SystemExit(f"validate_trace: FAIL: {msg}")


def validate(doc: object, *, min_pids: int) -> dict:
    """Validate the trace document; returns the events-derived summary."""
    if not isinstance(doc, dict):
        fail(f"top level must be an object, got {type(doc).__name__}")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents must be a non-empty array")

    x_events = [e for e in events if e.get("ph") == "X"]
    meta = [e for e in events if e.get("ph") == "M"]
    if not x_events:
        fail("no complete ('ph': 'X') events")
    for e in x_events:
        missing = REQUIRED_X_KEYS - set(e)
        if missing:
            fail(f"event {e.get('name')!r} missing keys {sorted(missing)}")
        if not isinstance(e["name"], str) or not e["name"]:
            fail("event with empty name")
        if e["ts"] < 0 or e["dur"] < 0:
            fail(f"event {e['name']!r} has negative ts/dur")

    pids = {e["pid"] for e in x_events}
    if len(pids) < min_pids:
        fail(f"expected >= {min_pids} distinct pids, got {sorted(pids)}")
    named_pids = {e["pid"] for e in meta
                  if e.get("name") == "process_name"}
    if not pids <= named_pids:
        fail(f"pids without process_name metadata: "
             f"{sorted(pids - named_pids)}")

    obs = doc.get("reproObs")
    if not isinstance(obs, dict):
        fail("missing reproObs block")
    for key in ("counters", "histograms", "spanAggregates"):
        if not isinstance(obs.get(key), dict):
            fail(f"reproObs.{key} must be an object")
    for name, agg in obs["spanAggregates"].items():
        for k in ("calls", "total_s", "self_s", "max_s"):
            if k not in agg:
                fail(f"spanAggregates[{name!r}] missing {k!r}")
        if agg["self_s"] > agg["total_s"] + 1e-9:
            fail(f"spanAggregates[{name!r}]: self_s > total_s")

    return {
        "events": len(x_events),
        "pids": len(pids),
        "span_names": sorted({e["name"] for e in x_events}),
        "counters": obs["counters"],
        "span_aggregates": obs["spanAggregates"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", type=Path)
    parser.add_argument("--min-pids", type=int, default=1,
                        help="minimum distinct pids expected "
                             "(2+ for a --jobs > 1 campaign)")
    parser.add_argument("--baseline-out", type=Path, default=None,
                        metavar="PATH",
                        help="also write a timing-baseline JSON snapshot "
                             "(span aggregates + counters) to PATH")
    args = parser.parse_args(argv)

    doc = json.loads(args.trace.read_text())
    summary = validate(doc, min_pids=args.min_pids)
    print(f"validate_trace: OK: {summary['events']} events, "
          f"{summary['pids']} pid(s), "
          f"{len(summary['span_names'])} span names")
    if args.baseline_out is not None:
        args.baseline_out.write_text(
            json.dumps(summary, indent=2, sort_keys=True) + "\n")
        print(f"baseline written to {args.baseline_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
